/// \file reproduction_test.cpp
/// \brief Guard rails for the paper reproduction itself: miniature versions
/// of the headline results that must keep holding as the code evolves.
/// Uses shortened traces (1500 jobs) to stay fast; the bench binaries run
/// the full 5000-job experiments.
#include <gtest/gtest.h>

#include "report/figures.hpp"

namespace bsld::report {
namespace {

RunSpec dvfs_spec(wl::Archive archive, double threshold,
                  std::optional<std::int64_t> wq, std::int32_t jobs = 1500) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(archive, jobs);
  core::DvfsConfig config;
  config.bsld_threshold = threshold;
  config.wq_threshold = wq;
  spec.policy.dvfs = config;
  return spec;
}

RunSpec baseline_spec(wl::Archive archive, std::int32_t jobs = 1500) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(archive, jobs);
  return spec;
}

TEST(ReproductionTest, Table1BaselineOrdering) {
  // The paper's baseline ordering: Thunder ~ 1 <= Atlas ~ 1.08 << CTC <
  // Blue << SDSC ~ 25. The ordering is the load signature the rest of the
  // evaluation depends on.
  std::vector<RunSpec> specs;
  for (const wl::Archive archive : wl::all_archives()) {
    specs.push_back(baseline_spec(archive, 2500));
  }
  const auto results = run_all(specs);
  const double ctc = results[0].sim().avg_bsld;
  const double sdsc = results[1].sim().avg_bsld;
  const double blue = results[2].sim().avg_bsld;
  const double thunder = results[3].sim().avg_bsld;
  const double atlas = results[4].sim().avg_bsld;

  EXPECT_NEAR(thunder, 1.0, 0.1);
  EXPECT_NEAR(atlas, 1.08, 0.25);
  EXPECT_GT(ctc, atlas);
  EXPECT_GT(blue, 1.5);
  EXPECT_GT(sdsc, 10.0);
  EXPECT_GT(sdsc, blue);
  EXPECT_GT(sdsc, ctc);
}

TEST(ReproductionTest, Fig3SaturatedSdscCannotSave) {
  // "Hence the proposed policy with used BSLDthreshold values can not lead
  // to an energy decrease" — within a couple percent of 1.0 at bounded WQ.
  const auto results =
      run_all({dvfs_spec(wl::Archive::kSDSC, 2.0, 16),
               baseline_spec(wl::Archive::kSDSC)});
  const auto norm = normalized_energy(results[0].sim(), results[1].sim());
  EXPECT_GT(norm.computational, 0.97);
}

TEST(ReproductionTest, Fig3LightWorkloadsSaveEnergy) {
  const auto results =
      run_all({dvfs_spec(wl::Archive::kLLNLAtlas, 2.0, std::nullopt),
               baseline_spec(wl::Archive::kLLNLAtlas)});
  const auto norm = normalized_energy(results[0].sim(), results[1].sim());
  EXPECT_LT(norm.computational, 0.85);  // strong savings on light load
  EXPECT_LT(norm.total, 0.90);
}

TEST(ReproductionTest, Fig3RelaxingWqIncreasesSavings) {
  const auto results = run_all({dvfs_spec(wl::Archive::kLLNLAtlas, 2.0, 0),
                                dvfs_spec(wl::Archive::kLLNLAtlas, 2.0, 16),
                                baseline_spec(wl::Archive::kLLNLAtlas)});
  const auto wq0 = normalized_energy(results[0].sim(), results[2].sim());
  const auto wq16 = normalized_energy(results[1].sim(), results[2].sim());
  EXPECT_LE(wq16.computational, wq0.computational + 0.01);
}

TEST(ReproductionTest, Fig5DvfsCostsPerformance) {
  const auto results =
      run_all({dvfs_spec(wl::Archive::kSDSCBlue, 2.0, std::nullopt),
               baseline_spec(wl::Archive::kSDSCBlue)});
  EXPECT_GT(results[0].sim().avg_bsld, results[1].sim().avg_bsld);
  EXPECT_GT(results[0].sim().avg_wait, results[1].sim().avg_wait);
}

TEST(ReproductionTest, Fig7ComputationalEnergyFallsWithSystemSize) {
  RunSpec small = dvfs_spec(wl::Archive::kSDSCBlue, 2.0, 0);
  RunSpec grown = small;
  grown.size_scale = 1.5;
  const auto results =
      run_all({small, grown, baseline_spec(wl::Archive::kSDSCBlue)});
  const auto at_1x = normalized_energy(results[0].sim(), results[2].sim());
  const auto at_15x = normalized_energy(results[1].sim(), results[2].sim());
  EXPECT_LT(at_15x.computational, at_1x.computational);
}

TEST(ReproductionTest, Fig9EnlargingImprovesBsld) {
  RunSpec small = dvfs_spec(wl::Archive::kCTC, 2.0, std::nullopt);
  RunSpec grown = small;
  grown.size_scale = 1.5;
  const auto results = run_all({small, grown});
  EXPECT_LT(results[1].sim().avg_bsld, results[0].sim().avg_bsld);
}

TEST(ReproductionTest, Table3EnlargedSystemBeatsOriginalWaits) {
  RunSpec grown = dvfs_spec(wl::Archive::kSDSCBlue, 2.0, 0);
  grown.size_scale = 1.5;
  const auto results =
      run_all({grown, baseline_spec(wl::Archive::kSDSCBlue)});
  EXPECT_LT(results[0].sim().avg_wait, results[1].sim().avg_wait);
}

TEST(ReproductionTest, ReducedJobsGrowWithWqRelaxation) {
  const auto results = run_all({dvfs_spec(wl::Archive::kSDSCBlue, 2.0, 0),
                                dvfs_spec(wl::Archive::kSDSCBlue, 2.0, 16),
                                dvfs_spec(wl::Archive::kSDSCBlue, 2.0,
                                          std::nullopt)});
  EXPECT_LE(results[0].sim().reduced_jobs, results[1].sim().reduced_jobs);
  EXPECT_LE(results[1].sim().reduced_jobs, results[2].sim().reduced_jobs);
}

}  // namespace
}  // namespace bsld::report
