/// \file scenarios_test.cpp
/// \brief Cross-module scenario tests: the paper's mechanisms observed
/// end-to-end on purpose-built miniature workloads.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"

namespace bsld {
namespace {

using core::BasePolicy;
using testing::Models;
using testing::job;
using testing::workload;

class ScenarioTest : public ::testing::Test {
 protected:
  core::DvfsConfig dvfs(double threshold, std::optional<std::int64_t> wq) {
    core::DvfsConfig config;
    config.bsld_threshold = threshold;
    config.wq_threshold = wq;
    return config;
  }

  Models models_;
};

TEST_F(ScenarioTest, DvfsSavesEnergyOnLightLoad) {
  // Sparse long jobs: everything runs at the lowest gear; active power
  // 26.8 W vs 95 W with dilation 1.9375 => ~45% less computational energy.
  std::vector<wl::Job> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(job(i + 1, i * 20000, 5000, 5400, 2));
  }
  const wl::Workload load = workload(8, jobs);
  const auto baseline = testing::run(load, models_);
  const auto reduced = testing::run(load, models_, BasePolicy::kEasy,
                                    dvfs(2.0, std::nullopt));
  EXPECT_EQ(reduced.reduced_jobs, 10);
  const double ratio = reduced.energy.computational_joules /
                       baseline.energy.computational_joules;
  EXPECT_NEAR(ratio, (26.8 / 95.0) * 1.9375, 0.02);
}

TEST_F(ScenarioTest, SaturationSuppressesDvfs) {
  // Back-to-back full-machine long jobs: every later job's predicted BSLD
  // blows past the threshold, so almost nothing is reduced.
  std::vector<wl::Job> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(job(i + 1, i, 7000, 7200, 8));
  }
  const auto result = testing::run(workload(8, jobs), models_,
                                   BasePolicy::kEasy, dvfs(2.0, std::nullopt));
  EXPECT_LE(result.reduced_jobs, 1);  // only the first, zero-wait job
}

TEST_F(ScenarioTest, WqGateStopsCascadingSlowdown) {
  // Same congested trace: WQ=0 allows DVFS only for the zero-queue first
  // job; the wait-time cascade of WQ=NO must be at least as bad.
  std::vector<wl::Job> jobs;
  for (int i = 0; i < 12; ++i) {
    jobs.push_back(job(i + 1, i * 600, 3000, 3300, 6));
  }
  const wl::Workload load = workload(8, jobs);
  const auto gated =
      testing::run(load, models_, BasePolicy::kEasy, dvfs(3.0, 0));
  const auto open =
      testing::run(load, models_, BasePolicy::kEasy, dvfs(3.0, std::nullopt));
  EXPECT_LE(gated.reduced_jobs, open.reduced_jobs);
  EXPECT_LE(gated.avg_wait, open.avg_wait);
  EXPECT_GE(open.avg_bsld, gated.avg_bsld);
}

TEST_F(ScenarioTest, ThresholdControlsGearChoice) {
  // One waiting job; tighter thresholds must never pick a lower gear.
  const wl::Workload load =
      workload(4, {job(1, 0, 2000, 2400, 4), job(2, 10, 7000, 7200, 4)});
  GearIndex previous_gear = 0;
  for (const double threshold : {3.0, 2.0, 1.5}) {
    const auto result = testing::run(load, models_, BasePolicy::kEasy,
                                     dvfs(threshold, std::nullopt));
    EXPECT_GE(result.jobs[1].gear, previous_gear);
    previous_gear = result.jobs[1].gear;
  }
}

TEST_F(ScenarioTest, EnlargedSystemImprovesBsldAndComputationalEnergy) {
  // The §5.2 mechanism in miniature: same trace, +50% CPUs, DVFS on.
  std::vector<wl::Job> jobs;
  for (int i = 0; i < 40; ++i) {
    jobs.push_back(job(i + 1, i * 500, 4000, 4500, 4 + (i % 5)));
  }
  const wl::Workload load = workload(16, jobs);
  const auto original = testing::run(load, models_, BasePolicy::kEasy,
                                     dvfs(2.0, std::nullopt));
  sim::SimulationConfig enlarged;
  enlarged.cpus = 24;
  const auto bigger = testing::run(load, models_, BasePolicy::kEasy,
                                   dvfs(2.0, std::nullopt), "FirstFit",
                                   enlarged);
  EXPECT_LT(bigger.avg_bsld, original.avg_bsld);
  EXPECT_LE(bigger.energy.computational_joules,
            original.energy.computational_joules);
}

TEST_F(ScenarioTest, PenalizedRuntimeEntersBsld) {
  // A lone reduced job has BSLD == its dilation coefficient (long job).
  const auto result =
      testing::run(workload(4, {job(1, 0, 5000, 5400, 2)}), models_,
                   BasePolicy::kEasy, dvfs(2.0, std::nullopt));
  EXPECT_EQ(result.jobs[0].gear, 0);
  EXPECT_NEAR(result.jobs[0].bsld, 1.9375, 0.001);
}

TEST_F(ScenarioTest, BaselineMatchesEq1) {
  // Without DVFS, Eq. 6 degenerates to Eq. 1 for every job.
  std::vector<wl::Job> jobs;
  for (int i = 0; i < 20; ++i) {
    jobs.push_back(job(i + 1, i * 100, 900 + i * 10, 1000 + i * 10, 3));
  }
  const auto result = testing::run(workload(8, jobs), models_);
  for (const sim::JobOutcome& outcome : result.jobs) {
    EXPECT_DOUBLE_EQ(outcome.bsld,
                     core::bounded_slowdown(outcome.wait(),
                                            outcome.run_time_top));
  }
}

TEST_F(ScenarioTest, IdleEnergyDominatedByHorizonOnEmptyMachine) {
  // A nearly idle machine: total energy >> computational energy.
  const auto result =
      testing::run(workload(64, {job(1, 0, 100, 200, 1)}), models_);
  EXPECT_GT(result.energy.idle_joules,
            10.0 * result.energy.computational_joules);
}

}  // namespace
}  // namespace bsld
