/// \file dvfs_grid_test.cpp
/// \brief Parameterized sweeps over the full (BSLDthreshold, WQthreshold)
/// grid: policy-level invariants that must hold for every cell of the
/// paper's Figs. 3-5, plus cross-cell dominance relations.
#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "workload/synthetic.hpp"

namespace bsld {
namespace {

wl::Workload grid_workload(std::uint64_t seed) {
  wl::WorkloadSpec spec;
  spec.name = "grid";
  spec.cpus = 48;
  spec.num_jobs = 400;
  spec.arrival.load_target = 0.75;
  spec.arrival.daily_amplitude = 0.6;
  spec.arrival.burst_probability = 0.3;
  return wl::generate(spec, seed);
}

class DvfsGridTest
    : public ::testing::TestWithParam<
          std::tuple<double, std::optional<std::int64_t>, std::uint64_t>> {
 protected:
  testing::Models models_;
};

TEST_P(DvfsGridTest, CellInvariants) {
  const auto& [threshold, wq, seed] = GetParam();
  const wl::Workload load = grid_workload(seed);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = threshold;
  dvfs.wq_threshold = wq;
  const auto run = testing::run(load, models_, core::BasePolicy::kEasy, dvfs);
  const auto baseline = testing::run(load, models_);

  // DVFS can only consume less or equal computational energy than the
  // baseline: reduced gears strictly dominate on energy-per-work, and at
  // worst nothing is reduced.
  EXPECT_LE(run.energy.computational_joules,
            baseline.energy.computational_joules * (1.0 + 1e-9));

  // Reduced-job accounting is consistent with the per-gear histogram.
  std::int64_t below_top = 0;
  for (std::size_t g = 0; g + 1 < run.jobs_per_gear.size(); ++g) {
    below_top += run.jobs_per_gear[g];
  }
  EXPECT_EQ(below_top, run.reduced_jobs);

  // Every reduced job individually satisfied causality and dilation.
  for (const sim::JobOutcome& job : run.jobs) {
    if (job.gear != models_.gears.top_index()) {
      EXPECT_GT(job.scaled_runtime, 0);
      EXPECT_GE(job.scaled_runtime, job.run_time_top);
    }
  }

  // The baseline never reduces anything.
  EXPECT_EQ(baseline.reduced_jobs, 0);
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, DvfsGridTest,
    ::testing::Combine(
        ::testing::Values(1.5, 2.0, 3.0),
        ::testing::Values(std::optional<std::int64_t>{0},
                          std::optional<std::int64_t>{4},
                          std::optional<std::int64_t>{16},
                          std::optional<std::int64_t>{}),
        ::testing::Values(7u, 41u)));

class DvfsDominanceTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  sim::SimulationResult run_cell(const wl::Workload& load, double threshold,
                                 std::optional<std::int64_t> wq) {
    core::DvfsConfig dvfs;
    dvfs.bsld_threshold = threshold;
    dvfs.wq_threshold = wq;
    return testing::run(load, models_, core::BasePolicy::kEasy, dvfs);
  }
  testing::Models models_;
};

TEST_P(DvfsDominanceTest, NoLimitReducesAtLeastAsManyAsWqZero) {
  const wl::Workload load = grid_workload(GetParam());
  const auto wq0 = run_cell(load, 2.0, 0);
  const auto open = run_cell(load, 2.0, std::nullopt);
  // Relaxing the WQ gate can only admit more reductions on the identical
  // trace... up to scheduling feedback; on these light grid traces the
  // relation is stable and is the paper's Fig. 4 reading direction.
  EXPECT_GE(open.reduced_jobs, wq0.reduced_jobs);
  EXPECT_LE(open.energy.computational_joules,
            wq0.energy.computational_joules * (1.0 + 1e-9));
}

TEST_P(DvfsDominanceTest, WqZeroKeepsPenaltyBelowNoLimit) {
  const wl::Workload load = grid_workload(GetParam());
  const auto wq0 = run_cell(load, 3.0, 0);
  const auto open = run_cell(load, 3.0, std::nullopt);
  EXPECT_LE(wq0.avg_bsld, open.avg_bsld + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DvfsDominanceTest,
                         ::testing::Values(7u, 41u, 97u));

}  // namespace
}  // namespace bsld
