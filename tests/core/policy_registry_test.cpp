#include "core/policy_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/easy.hpp"
#include "util/error.hpp"

namespace bsld::core {
namespace {

TEST(PolicySpecTest, ResolvedNames) {
  PolicySpec spec;
  EXPECT_EQ(spec.resolved_name(), "easy");
  EXPECT_EQ(spec.resolved_assigner(), "ftop");

  spec.dvfs = DvfsConfig{};
  EXPECT_EQ(spec.resolved_assigner(), "bsld");
  spec.assigner = "ftop";  // explicit override wins
  EXPECT_EQ(spec.resolved_assigner(), "ftop");

  spec.raise = DynamicRaiseConfig{};
  EXPECT_EQ(spec.resolved_name(), "easy+raise");
  spec.name = "fcfs";  // raise only upgrades "easy"
  EXPECT_EQ(spec.resolved_name(), "fcfs");
}

TEST(PolicyRegistryTest, BuiltinsAreRegistered) {
  const std::vector<std::string> policies =
      PolicyRegistry::global().policy_names();
  for (const char* name : {"easy", "fcfs", "conservative", "easy+raise"}) {
    EXPECT_TRUE(std::find(policies.begin(), policies.end(), name) !=
                policies.end())
        << name;
  }
  EXPECT_TRUE(PolicyRegistry::global().has_assigner("ftop"));
  EXPECT_TRUE(PolicyRegistry::global().has_assigner("bsld"));
}

TEST(PolicyRegistryTest, MakesEveryBuiltin) {
  for (const std::string& name : PolicyRegistry::global().policy_names()) {
    PolicySpec spec;
    spec.name = name;
    spec.dvfs = DvfsConfig{};
    if (name == "easy+raise") spec.raise = DynamicRaiseConfig{};
    const auto policy = PolicyRegistry::global().make(spec);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->queue_size(), 0u) << name;
    EXPECT_FALSE(policy->name().empty()) << name;
  }
}

TEST(PolicyRegistryTest, UnknownPolicyListsRegisteredNames) {
  PolicySpec spec;
  spec.name = "round-robin";
  try {
    (void)PolicyRegistry::global().make(spec);
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("round-robin"), std::string::npos);
    EXPECT_NE(what.find("easy"), std::string::npos);
    EXPECT_NE(what.find("conservative"), std::string::npos);
  }
}

TEST(PolicyRegistryTest, UnknownAssignerThrows) {
  PolicySpec spec;
  spec.assigner = "oracle";
  EXPECT_THROW((void)PolicyRegistry::global().make_assigner(spec), Error);
}

TEST(PolicyRegistryTest, BsldAssignerRequiresDvfsConfig) {
  PolicySpec spec;
  spec.assigner = "bsld";  // forced, but no DVFS config provided
  EXPECT_THROW((void)PolicyRegistry::global().make_assigner(spec), Error);
}

TEST(PolicyRegistryTest, RaisePolicyRequiresRaiseConfig) {
  PolicySpec spec;
  spec.name = "easy+raise";
  EXPECT_THROW((void)PolicyRegistry::global().make(spec), Error);
}

TEST(PolicyRegistryTest, DuplicateRegistrationThrows) {
  EXPECT_THROW(PolicyRegistry::global().add_policy(
                   "easy", [](const PolicySpec&) {
                     return std::unique_ptr<SchedulingPolicy>();
                   }),
               Error);
}

TEST(PolicyRegistryTest, DownstreamPolicyPlugsIn) {
  // The open-world seam: register a policy under a new name and construct
  // it purely by name, as a serialized RunSpec would.
  static bool registered = false;
  if (!registered) {
    registered = true;
    PolicyRegistry::global().add_policy(
        "test-easy-clone", [](const PolicySpec& spec) {
          return std::make_unique<EasyBackfilling>(
              cluster::make_selector(spec.selector),
              PolicyRegistry::global().make_assigner(spec));
        });
  }
  PolicySpec spec;
  spec.name = "test-easy-clone";
  const auto policy = PolicyRegistry::global().make(spec);
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(),
            PolicyRegistry::global().make(PolicySpec{})->name());
}

TEST(PolicyConfigTest, RoundTripsDvfsAndRaise) {
  PolicySpec spec;
  spec.name = "easy";
  spec.selector = "LastFit";
  DvfsConfig dvfs;
  dvfs.bsld_threshold = 1.5;
  dvfs.wq_threshold = 4;
  dvfs.wq_counts_self = true;
  spec.dvfs = dvfs;
  DynamicRaiseConfig raise;
  raise.queue_limit = 8;
  raise.one_step = true;
  spec.raise = raise;

  util::Config config;
  policy_to_config(spec, config);
  const PolicySpec parsed = policy_from_config(config);
  EXPECT_EQ(parsed, spec);

  util::Config again;
  policy_to_config(parsed, again);
  EXPECT_EQ(again.to_string(), config.to_string());
}

TEST(PolicyConfigTest, WqNoLimitSerializesAsNO) {
  PolicySpec spec;
  DvfsConfig dvfs;
  dvfs.wq_threshold = std::nullopt;
  spec.dvfs = dvfs;
  util::Config config;
  policy_to_config(spec, config);
  EXPECT_EQ(config.get_string("policy.wq_threshold", ""), "NO");
  EXPECT_FALSE(policy_from_config(config).dvfs->wq_threshold.has_value());
}

TEST(PolicyConfigTest, UnknownNameRejectedAtParse) {
  util::Config config;
  config.set("policy.name", "round-robin");
  EXPECT_THROW((void)policy_from_config(config), Error);
}

TEST(PolicyLabelTest, DisplayForms) {
  PolicySpec spec;
  EXPECT_EQ(policy_label(spec), "EASY noDVFS");
  spec.name = "conservative";
  DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = 16;
  spec.dvfs = dvfs;
  EXPECT_EQ(policy_label(spec), "CONS BSLD<=2,WQ<=16");
}

TEST(PolicyLabelTest, RaiseNameWithoutRaiseConfigIsSafe) {
  // A parsed config can name "easy+raise" without a raise block (run_one
  // rejects it later); label() must not dereference the empty optional.
  PolicySpec spec;
  spec.name = "easy+raise";
  EXPECT_EQ(policy_label(spec), "EASY+raise noDVFS");
}

}  // namespace
}  // namespace bsld::core
