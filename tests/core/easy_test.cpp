#include "core/easy.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::core {
namespace {

using testing::Models;
using testing::job;
using testing::workload;

class EasyTest : public ::testing::Test {
 protected:
  Models models_;
};

TEST_F(EasyTest, RequiresCollaborators) {
  EXPECT_THROW(EasyBackfilling(nullptr, std::make_unique<TopFrequency>()),
               Error);
  EXPECT_THROW(
      EasyBackfilling(cluster::make_selector("FirstFit"), nullptr), Error);
}

TEST_F(EasyTest, NameReflectsComposition) {
  const EasyBackfilling policy(cluster::make_selector("FirstFit"),
                               std::make_unique<TopFrequency>());
  EXPECT_EQ(policy.name(), "EASY[FirstFit,Ftop]");
}

TEST_F(EasyTest, FcfsOrderWhenNoBackfillPossible) {
  // Identical full-machine jobs must run strictly in submit order.
  const auto result = testing::run(
      workload(4, {job(1, 0, 100, 100, 4), job(2, 1, 100, 100, 4),
                   job(3, 2, 100, 100, 4)}),
      models_);
  EXPECT_EQ(result.jobs[0].start, 0);
  EXPECT_EQ(result.jobs[1].start, 100);
  EXPECT_EQ(result.jobs[2].start, 200);
}

TEST_F(EasyTest, BackfillNeverDelaysHeadReservation) {
  // Head (job 2) reserves all CPUs at t=1200 (job 1's requested end).
  // Job 3 (1500 s) would cross the shadow on a reserved CPU, so it must
  // NOT backfill; job 4 (100 s, finishes before the shadow) must.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1200, 1200, 3), job(2, 10, 500, 600, 4),
                   job(3, 20, 1500, 1500, 1), job(4, 30, 100, 100, 1)}),
      models_);
  EXPECT_EQ(result.jobs[1].start, 1200);  // reservation honoured exactly
  EXPECT_GE(result.jobs[2].start, 1200);  // job 3 did not backfill
  EXPECT_EQ(result.jobs[3].start, 30);    // job 4 backfilled at submit
}

TEST_F(EasyTest, EarlyCompletionTriggersRescheduling) {
  // Job 1 requests 2000 s but ends at 500: the head must start at 500,
  // not at the requested end.
  const auto result = testing::run(
      workload(2, {job(1, 0, 500, 2000, 2), job(2, 10, 100, 200, 2)}),
      models_);
  EXPECT_EQ(result.jobs[1].start, 500);
}

TEST_F(EasyTest, BackfilledJobRunsOutsideReservedCpusWhenCrossingShadow) {
  // 4 CPUs: job 1 on {0,1} until 1000. Head job 2 wants 3 -> reserved
  // start 1000 on {0,1,2} (First Fit at t=1000). Job 3 (2 CPUs, 2000 s,
  // crosses the shadow) fits only if CPUs {2,3} minus reservation overlap
  // -> only CPU 3 outside the reservation: must NOT start.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1000, 2), job(2, 10, 500, 500, 3),
                   job(3, 20, 2000, 2000, 2)}),
      models_);
  EXPECT_EQ(result.jobs[1].start, 1000);
  EXPECT_GE(result.jobs[2].start, 1500);  // after head completes
}

TEST_F(EasyTest, SingleCpuCrossingShadowOutsideReservationBackfills) {
  // Same setup but job 3 needs only 1 CPU: CPU 3 is free and outside the
  // reserved set, so the long job backfills immediately.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1000, 2), job(2, 10, 500, 500, 3),
                   job(3, 20, 2000, 2000, 1)}),
      models_);
  EXPECT_EQ(result.jobs[2].start, 20);
  EXPECT_EQ(result.jobs[1].start, 1000);  // still on time
}

TEST_F(EasyTest, QueueSizeTracksWaitingJobs) {
  EasyBackfilling policy(cluster::make_selector("FirstFit"),
                         std::make_unique<TopFrequency>());
  EXPECT_EQ(policy.queue_size(), 0u);
  EXPECT_EQ(policy.reservation(), nullptr);
}

TEST_F(EasyTest, ReservationGearAgnosticButStartGearDecidedLate) {
  // With DVFS: job 1 itself is reduced (lone arrival, zero wait) and runs
  // 600 * 1.9375 ~ 1162 s. The head (job 2) reserved against job 1's
  // *requested* end but starts the moment job 1 really finishes, and its
  // gear reflects that actual wait.
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  const auto result = testing::run(
      workload(2, {job(1, 0, 600, 4000, 2), job(2, 10, 7000, 7200, 2)}),
      models_, BasePolicy::kEasy, dvfs);
  EXPECT_EQ(result.jobs[0].gear, 0);
  EXPECT_EQ(result.jobs[0].end, 1162);
  EXPECT_EQ(result.jobs[1].start, 1162);
  // Wait 1152 s on RQ 7200: (1152 + 7200*1.9375)/7200 = 2.097 > 2 at
  // gear 0; (1152 + 7200*1.545)/7200 = 1.705 <= 2 at gear 1 -> gear 1.
  EXPECT_EQ(result.jobs[1].gear, 1);
}

TEST_F(EasyTest, DvfsDilationBlocksShadowCrossingBackfill) {
  // Job 1 is itself reduced (zero wait) and occupies its CPUs until
  // 1000 * 1.9375 = 1937, which is also the head's reserved start. Job 3
  // at the lowest gear would run past that shadow (20 + 1200*1.9375 >
  // 1937) with no CPU outside the reservation, so the Fig. 2 loop climbs
  // to gear 1 (20 + 1200*1.545 = 1874 <= 1937), which also passes the
  // BSLD test.
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 3.0;  // permissive: feasibility decides, not BSLD
  dvfs.wq_threshold = std::nullopt;
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1000, 3), job(2, 10, 500, 500, 4),
                   job(3, 20, 1150, 1200, 1)}),
      models_, BasePolicy::kEasy, dvfs);
  EXPECT_EQ(result.jobs[0].gear, 0);
  EXPECT_EQ(result.jobs[2].start, 20);
  EXPECT_EQ(result.jobs[2].gear, 1);
}

TEST_F(EasyTest, WqThresholdGatesBackfilledJobs) {
  // With WQ=0, a job backfilled while others wait must run at Ftop.
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 3.0;
  dvfs.wq_threshold = 0;
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1000, 3), job(2, 10, 500, 500, 4),
                   job(3, 20, 100, 150, 1)}),
      models_, BasePolicy::kEasy, dvfs);
  // Job 3 backfills at 20 but the queue holds job 2 -> Ftop.
  EXPECT_EQ(result.jobs[2].start, 20);
  EXPECT_EQ(result.jobs[2].gear, models_.gears.top_index());
}

TEST_F(EasyTest, LoneArrivalOnEmptyMachineGetsDvfs) {
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = 0;
  const auto result =
      testing::run(workload(4, {job(1, 0, 5000, 5400, 2)}), models_,
                   BasePolicy::kEasy, dvfs);
  EXPECT_EQ(result.jobs[0].gear, 0);  // empty queue: WQ=0 still allows DVFS
}

}  // namespace
}  // namespace bsld::core
