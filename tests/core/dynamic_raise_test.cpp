#include "core/dynamic_raise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/policy_factory.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::core {
namespace {

using testing::Models;
using testing::job;
using testing::workload;

class DynamicRaiseTest : public ::testing::Test {
 protected:
  sim::SimulationResult run_raise(const wl::Workload& load,
                                  DynamicRaiseConfig raise,
                                  double bsld_threshold = 3.0) {
    DvfsConfig dvfs;
    dvfs.bsld_threshold = bsld_threshold;
    dvfs.wq_threshold = std::nullopt;
    const auto policy = make_dynamic_raise_policy(dvfs, raise, "FirstFit");
    return sim::run_simulation(load, *policy, models_.power, models_.time);
  }

  Models models_;
};

TEST_F(DynamicRaiseTest, InvalidConfigRejected) {
  DynamicRaiseConfig raise;
  raise.queue_limit = -1;
  EXPECT_THROW((void)make_dynamic_raise_policy(std::nullopt, raise), Error);
}

TEST_F(DynamicRaiseTest, NameDescribesRule) {
  DynamicRaiseConfig raise;
  raise.queue_limit = 4;
  const auto policy = make_dynamic_raise_policy(std::nullopt, raise);
  EXPECT_EQ(policy->name(), "EASY[FirstFit,Ftop]+raise>4,top");
  raise.one_step = true;
  const auto stepper = make_dynamic_raise_policy(std::nullopt, raise);
  EXPECT_EQ(stepper->name(), "EASY[FirstFit,Ftop]+raise>4,step");
}

TEST_F(DynamicRaiseTest, NoPressureNoBoost) {
  DynamicRaiseConfig raise;
  raise.queue_limit = 16;
  const auto result =
      run_raise(workload(4, {job(1, 0, 5000, 5400, 2)}), raise, 2.0);
  EXPECT_EQ(result.jobs[0].gear, 0);
  EXPECT_FALSE(result.jobs[0].boosted);
  EXPECT_EQ(result.boosted_jobs, 0);
}

TEST_F(DynamicRaiseTest, QueuePressureRaisesRunningJob) {
  // Job 1 starts alone at the lowest gear, then a burst of full-machine
  // jobs floods the queue past the limit: job 1 must be raised to Ftop and
  // finish earlier than its fully-dilated end.
  std::vector<wl::Job> jobs = {job(1, 0, 10000, 10800, 2)};
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(job(i + 2, 100 + i, 500, 600, 4));
  }
  DynamicRaiseConfig raise;
  raise.queue_limit = 2;
  const auto result = run_raise(workload(4, jobs), raise);

  const auto& first = result.jobs[0];
  EXPECT_EQ(first.gear, 0);             // started reduced
  EXPECT_TRUE(first.boosted);
  EXPECT_EQ(first.final_gear, models_.gears.top_index());
  EXPECT_EQ(result.boosted_jobs, 1);
  // Ran ~102 s at gear 0 (coef 1.9375) then the rest at Ftop: total well
  // under the fully-dilated 19375 s and above the undilated 10000 s.
  EXPECT_LT(first.scaled_runtime, 11000);
  EXPECT_GT(first.scaled_runtime, 10000);
}

TEST_F(DynamicRaiseTest, BoostedRuntimeMatchesPiecewiseModel) {
  std::vector<wl::Job> jobs = {job(1, 0, 10000, 10800, 2)};
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(job(i + 2, 100 + i, 500, 600, 4));
  }
  DynamicRaiseConfig raise;
  raise.queue_limit = 2;
  const auto result = run_raise(workload(4, jobs), raise);
  const auto& first = result.jobs[0];
  // Boost happens at t=102 (the 3rd burst arrival pushes the queue to 3 >
  // 2). Work done by then: 102/1.9375 top-seconds; remainder at Ftop.
  const double done_top = 102.0 / 1.9375;
  const Time expected_end =
      102 + static_cast<Time>(std::llround(10000.0 - done_top));
  EXPECT_EQ(first.end, expected_end);
}

TEST_F(DynamicRaiseTest, OneStepRaisesGearByGear) {
  std::vector<wl::Job> jobs = {job(1, 0, 10000, 10800, 2)};
  for (int i = 0; i < 3; ++i) {
    jobs.push_back(job(i + 2, 100 + i * 50, 500, 600, 4));
  }
  DynamicRaiseConfig raise;
  raise.queue_limit = 1;
  raise.one_step = true;
  const auto result = run_raise(workload(4, jobs), raise);
  const auto& first = result.jobs[0];
  EXPECT_TRUE(first.boosted);
  // Two pressure events -> two single-gear steps from gear 0.
  EXPECT_EQ(first.final_gear, 2);
}

TEST_F(DynamicRaiseTest, RaiseReducesBsldPenaltyVersusPlainDvfs) {
  // A congested trace where unconstrained DVFS hurts waits: raising under
  // pressure must not make performance worse.
  std::vector<wl::Job> jobs;
  for (int i = 0; i < 30; ++i) {
    jobs.push_back(job(i + 1, i * 300, 2000, 2200, 4 + (i % 4)));
  }
  const wl::Workload load = workload(8, jobs);

  DvfsConfig dvfs;
  dvfs.bsld_threshold = 3.0;
  dvfs.wq_threshold = std::nullopt;
  const auto plain = testing::run(load, models_, BasePolicy::kEasy, dvfs);

  DynamicRaiseConfig raise;
  raise.queue_limit = 2;
  const auto raised = run_raise(load, raise);

  EXPECT_LE(raised.avg_bsld, plain.avg_bsld);
  // Energy give-back: boosting burns more than plain DVFS but less than
  // the no-DVFS baseline.
  const auto baseline = testing::run(load, models_, BasePolicy::kEasy);
  EXPECT_GE(raised.energy.computational_joules,
            plain.energy.computational_joules);
  EXPECT_LE(raised.energy.computational_joules,
            baseline.energy.computational_joules * 1.0001);
}

TEST_F(DynamicRaiseTest, BoostGuardsInSimulation) {
  // boost_job on a non-running job / lowering gear must throw.
  const wl::Workload load = workload(2, {job(1, 0, 100, 200, 1)});
  const auto policy = make_policy(BasePolicy::kEasy, std::nullopt);
  sim::Simulation simulation(load, *policy, models_.power, models_.time);
  EXPECT_THROW(simulation.boost_job(1, 5), Error);  // nothing running yet
}

}  // namespace
}  // namespace bsld::core
