#include "core/frequency.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::core {
namespace {

class FrequencyTest : public ::testing::Test {
 protected:
  FrequencyTest() : context_(8, models_.time) {
    // A long job (requested 7200 s >> Th) submitted at t=0.
    context_.add_job(testing::job(1, 0, 7000, 7200, 4));
    // A short job (requested 300 s < Th).
    context_.add_job(testing::job(2, 0, 200, 300, 1));
  }

  DvfsConfig config(double threshold, std::optional<std::int64_t> wq) {
    DvfsConfig out;
    out.bsld_threshold = threshold;
    out.wq_threshold = wq;
    return out;
  }

  testing::Models models_;
  testing::FakeContext context_;
};

TEST_F(FrequencyTest, TopFrequencyAlwaysTop) {
  const TopFrequency assigner;
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 0, 100),
            models_.gears.top_index());
  const auto gear = assigner.backfill_gear(
      context_, context_.job(1), [](GearIndex) { return true; }, 100);
  ASSERT_TRUE(gear.has_value());
  EXPECT_EQ(*gear, models_.gears.top_index());
  EXPECT_FALSE(assigner
                   .backfill_gear(context_, context_.job(1),
                                  [](GearIndex) { return false; }, 0)
                   .has_value());
}

TEST_F(FrequencyTest, LowestSatisfyingGearWins) {
  // Zero wait, long job: predicted BSLD at gear g equals Coef(g).
  // Coef = [1.9375, 1.545, 1.321, 1.176, 1.075, 1.0].
  const BsldThresholdAssigner loose(config(2.0, std::nullopt));
  EXPECT_EQ(loose.reservation_gear(context_, context_.job(1), 0, 0), 0);

  const BsldThresholdAssigner tight(config(1.5, std::nullopt));
  // 1.9375 > 1.5, 1.545 > 1.5, 1.321 <= 1.5 -> gear 2.
  EXPECT_EQ(tight.reservation_gear(context_, context_.job(1), 0, 0), 2);
}

TEST_F(FrequencyTest, WaitPushesGearUp) {
  const BsldThresholdAssigner assigner(config(2.0, std::nullopt));
  // With 5802 s of wait (start 5802, submit 0) and RQ=7200:
  // gear 3: (5802 + 7200*1.176)/7200 = 1.98 <= 2, gear 2 fails.
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 5802, 0), 3);
}

TEST_F(FrequencyTest, FtopFallbackWhenNothingSatisfies) {
  const BsldThresholdAssigner assigner(config(2.0, std::nullopt));
  // Enormous wait: even Ftop exceeds the threshold; the head job must
  // still be scheduled at Ftop (DESIGN.md §4 decision 2).
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 100000, 0),
            models_.gears.top_index());
}

TEST_F(FrequencyTest, ShortJobFloorAbsorbsDilation) {
  const BsldThresholdAssigner assigner(config(1.5, std::nullopt));
  // RQ=300 < Th=600: predicted = (0 + 300*1.9375)/600 = 0.97 -> 1 <= 1.5.
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(2), 0, 0), 0);
}

TEST_F(FrequencyTest, WqGateForcesTop) {
  const BsldThresholdAssigner assigner(config(3.0, 4));
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 0, 4), 0);
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 0, 5),
            models_.gears.top_index());
}

TEST_F(FrequencyTest, WqZeroAllowsDvfsOnlyWhenAlone) {
  const BsldThresholdAssigner assigner(config(3.0, 0));
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 0, 0), 0);
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 0, 1),
            models_.gears.top_index());
}

TEST_F(FrequencyTest, WqCountsSelfMakesZeroThresholdInert) {
  DvfsConfig with_self = config(3.0, 0);
  with_self.wq_counts_self = true;
  const BsldThresholdAssigner assigner(with_self);
  // Even an empty queue counts the job itself: 1 > 0 -> Ftop.
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 0, 0),
            models_.gears.top_index());
}

TEST_F(FrequencyTest, NoLimitIgnoresQueue) {
  const BsldThresholdAssigner assigner(config(2.0, std::nullopt));
  EXPECT_EQ(assigner.reservation_gear(context_, context_.job(1), 0, 100000), 0);
}

TEST_F(FrequencyTest, BackfillPicksLowestFeasibleSatisfyingGear) {
  const BsldThresholdAssigner assigner(config(2.0, std::nullopt));
  // Gears 0-1 infeasible (dilated job would cross the shadow), gear 2+
  // feasible; BSLD satisfied everywhere (zero wait, long job, thr 2 ...
  // gear 0 satisfies but is infeasible; expect the first feasible gear).
  const auto gear = assigner.backfill_gear(
      context_, context_.job(1), [](GearIndex g) { return g >= 2; }, 0);
  ASSERT_TRUE(gear.has_value());
  EXPECT_EQ(*gear, 2);
}

TEST_F(FrequencyTest, BackfillNulloptWhenNothingWorks) {
  const BsldThresholdAssigner assigner(config(2.0, std::nullopt));
  EXPECT_FALSE(assigner
                   .backfill_gear(context_, context_.job(1),
                                  [](GearIndex) { return false; }, 0)
                   .has_value());
}

TEST_F(FrequencyTest, BackfillOverWqLiteralElseBranch) {
  // Fig. 2 else-branch: queue over threshold -> only Ftop, and the literal
  // pseudocode also demands satisfiesBSLD at Ftop.
  const BsldThresholdAssigner assigner(config(2.0, 0));
  context_.set_now(100000);  // job 1 has waited 100000 s: BSLD(Ftop) > 2
  EXPECT_FALSE(assigner
                   .backfill_gear(context_, context_.job(1),
                                  [](GearIndex) { return true; }, 5)
                   .has_value());

  DvfsConfig relaxed = config(2.0, 0);
  relaxed.backfill_requires_bsld_at_top = false;
  const BsldThresholdAssigner lenient(relaxed);
  const auto gear = lenient.backfill_gear(
      context_, context_.job(1), [](GearIndex) { return true; }, 5);
  ASSERT_TRUE(gear.has_value());
  EXPECT_EQ(*gear, models_.gears.top_index());
}

TEST_F(FrequencyTest, SatisfiesBsldMatchesEquation2) {
  const BsldThresholdAssigner assigner(config(2.0, std::nullopt));
  // (5802 + 7200*1.176)/7200 = 1.982 <= 2.
  EXPECT_TRUE(assigner.satisfies_bsld(context_, context_.job(1), 5802, 3));
  // (5802 + 7200*1.321)/7200 = 2.127 > 2.
  EXPECT_FALSE(assigner.satisfies_bsld(context_, context_.job(1), 5802, 2));
}

TEST_F(FrequencyTest, NamesDescribeConfiguration) {
  EXPECT_EQ(BsldThresholdAssigner(config(2.0, 16)).name(), "BSLD<=2,WQ<=16");
  EXPECT_EQ(BsldThresholdAssigner(config(1.5, std::nullopt)).name(),
            "BSLD<=1.5,WQ<=NO");
  EXPECT_EQ(TopFrequency().name(), "Ftop");
}

TEST_F(FrequencyTest, InvalidConfigsRejected) {
  EXPECT_THROW(BsldThresholdAssigner{config(0.5, std::nullopt)}, Error);
  EXPECT_THROW(BsldThresholdAssigner{config(2.0, -1)}, Error);
  DvfsConfig bad = config(2.0, std::nullopt);
  bad.bsld_floor = 0;
  EXPECT_THROW(BsldThresholdAssigner{bad}, Error);
}

}  // namespace
}  // namespace bsld::core
