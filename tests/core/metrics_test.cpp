#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::core {
namespace {

TEST(MetricsTest, Equation1BoundedSlowdown) {
  // Long job: denominator is its runtime.
  EXPECT_DOUBLE_EQ(bounded_slowdown(1000, 1000), 2.0);
  // Short job: denominator floors at Th=600.
  EXPECT_DOUBLE_EQ(bounded_slowdown(600, 60), 1.1);
  // Never below 1 (the "bounded" part).
  EXPECT_DOUBLE_EQ(bounded_slowdown(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(bounded_slowdown(0, 10000), 1.0);
}

TEST(MetricsTest, Equation1FloorBoundary) {
  // Runtime exactly Th: both branches agree.
  EXPECT_DOUBLE_EQ(bounded_slowdown(600, 600), 2.0);
  // Runtime just above Th uses the runtime.
  EXPECT_NEAR(bounded_slowdown(601, 601), 2.0, 1e-12);
}

TEST(MetricsTest, Equation2PredictedBsld) {
  // PredBSLD = max((WT + RQ*coef)/max(Th, RQ), 1).
  EXPECT_DOUBLE_EQ(predicted_bsld(0, 1000, 1.9375), 1.9375);
  EXPECT_DOUBLE_EQ(predicted_bsld(1000, 1000, 1.0), 2.0);
  // Short requested time: floor dominates the denominator.
  EXPECT_DOUBLE_EQ(predicted_bsld(0, 300, 2.0), 1.0);  // 600/600 = 1
  EXPECT_DOUBLE_EQ(predicted_bsld(600, 300, 2.0), 2.0);
}

TEST(MetricsTest, Equation6PenalizedBsld) {
  // Numerator uses the dilated runtime, denominator the top-gear runtime.
  EXPECT_DOUBLE_EQ(penalized_bsld(0, 1938, 1000), 1.938);
  EXPECT_DOUBLE_EQ(penalized_bsld(1000, 2000, 1000), 3.0);
  // Not penalized at Ftop: reduces to Eq. 1.
  EXPECT_DOUBLE_EQ(penalized_bsld(500, 1000, 1000),
                   bounded_slowdown(500, 1000));
}

TEST(MetricsTest, CustomFloor) {
  EXPECT_DOUBLE_EQ(bounded_slowdown(100, 50, 100), 1.5);
  EXPECT_DOUBLE_EQ(predicted_bsld(100, 50, 1.0, 100), 1.5);
}

TEST(MetricsTest, InvalidInputsRejected) {
  EXPECT_THROW((void)bounded_slowdown(-1, 100), Error);
  EXPECT_THROW((void)bounded_slowdown(0, 100, 0), Error);
  EXPECT_THROW((void)predicted_bsld(0, 100, 0.5), Error);  // coef < 1
}

// BSLD is monotone in wait and in dilation — the monotonicity the
// frequency-assignment loop relies on (if gear g fails the threshold, all
// lower gears fail too).
class BsldMonotonicityTest
    : public ::testing::TestWithParam<std::tuple<Time, Time>> {};

TEST_P(BsldMonotonicityTest, MonotoneInCoefficient) {
  const auto& [wait, requested] = GetParam();
  double previous = 0.0;
  for (const double coef : {1.0, 1.1, 1.3, 1.5, 1.9375}) {
    const double value = predicted_bsld(wait, requested, coef);
    EXPECT_GE(value, previous);
    previous = value;
  }
}

TEST_P(BsldMonotonicityTest, MonotoneInWait) {
  const auto& [wait, requested] = GetParam();
  EXPECT_LE(predicted_bsld(wait, requested, 1.5),
            predicted_bsld(wait + 1000, requested, 1.5));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BsldMonotonicityTest,
    ::testing::Combine(::testing::Values<Time>(0, 100, 10000),
                       ::testing::Values<Time>(60, 600, 7200)));

}  // namespace
}  // namespace bsld::core
