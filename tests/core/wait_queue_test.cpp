#include "core/wait_queue.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::core {
namespace {

TEST(WaitQueueTest, FcfsOrder) {
  WaitQueue queue;
  queue.push(3);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.head(), 3);
  EXPECT_EQ(queue.pop_head(), 3);
  EXPECT_EQ(queue.pop_head(), 1);
  EXPECT_EQ(queue.pop_head(), 2);
  EXPECT_TRUE(queue.empty());
}

TEST(WaitQueueTest, RemoveMiddlePreservesOrder) {
  WaitQueue queue;
  for (JobId id = 1; id <= 4; ++id) queue.push(id);
  queue.remove(2);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_FALSE(queue.contains(2));
  std::vector<JobId> order(queue.begin(), queue.end());
  EXPECT_EQ(order, (std::vector<JobId>{1, 3, 4}));
}

TEST(WaitQueueTest, DuplicatePushRejected) {
  WaitQueue queue;
  queue.push(1);
  EXPECT_THROW(queue.push(1), Error);
}

TEST(WaitQueueTest, EmptyAccessRejected) {
  WaitQueue queue;
  EXPECT_THROW((void)queue.head(), Error);
  EXPECT_THROW((void)queue.pop_head(), Error);
  EXPECT_THROW(queue.remove(1), Error);
}

TEST(WaitQueueTest, ContainsAndSize) {
  WaitQueue queue;
  EXPECT_FALSE(queue.contains(5));
  queue.push(5);
  EXPECT_TRUE(queue.contains(5));
  EXPECT_EQ(queue.size(), 1u);
}

TEST(WaitQueueTest, ReuseAfterRemoval) {
  WaitQueue queue;
  queue.push(1);
  queue.remove(1);
  queue.push(1);  // a job id may re-enter after leaving
  EXPECT_EQ(queue.head(), 1);
}

}  // namespace
}  // namespace bsld::core
