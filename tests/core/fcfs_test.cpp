#include "core/fcfs.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::core {
namespace {

using testing::Models;
using testing::job;
using testing::workload;

class FcfsTest : public ::testing::Test {
 protected:
  Models models_;
};

TEST_F(FcfsTest, RequiresCollaborators) {
  EXPECT_THROW(Fcfs(nullptr, std::make_unique<TopFrequency>()), Error);
  EXPECT_THROW(Fcfs(cluster::make_selector("FirstFit"), nullptr), Error);
}

TEST_F(FcfsTest, NameReflectsComposition) {
  const Fcfs policy(cluster::make_selector("FirstFit"),
                    std::make_unique<TopFrequency>());
  EXPECT_EQ(policy.name(), "FCFS[FirstFit,Ftop]");
}

TEST_F(FcfsTest, NoOvertakingEvenWhenBackfillWouldFit) {
  // EASY would backfill job 3 onto the idle CPU; FCFS must not.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1200, 3), job(2, 10, 500, 600, 4),
                   job(3, 20, 100, 150, 1)}),
      models_, BasePolicy::kFcfs);
  EXPECT_EQ(result.jobs[0].start, 0);
  EXPECT_EQ(result.jobs[1].start, 1000);
  EXPECT_EQ(result.jobs[2].start, 1500);  // strictly after job 2
}

TEST_F(FcfsTest, HeadStartsAsSoonAsItFits) {
  const auto result = testing::run(
      workload(4, {job(1, 0, 100, 100, 2), job(2, 0, 100, 100, 2)}),
      models_, BasePolicy::kFcfs);
  EXPECT_EQ(result.jobs[0].start, 0);
  EXPECT_EQ(result.jobs[1].start, 0);  // both fit side by side
}

TEST_F(FcfsTest, DrainsMultipleHeadsOnOneCompletion) {
  const auto result = testing::run(
      workload(4, {job(1, 0, 100, 100, 4), job(2, 1, 50, 60, 2),
                   job(3, 2, 50, 60, 2)}),
      models_, BasePolicy::kFcfs);
  EXPECT_EQ(result.jobs[1].start, 100);
  EXPECT_EQ(result.jobs[2].start, 100);  // both start when job 1 frees
}

TEST_F(FcfsTest, DvfsAssignerComposesWithFcfs) {
  // The paper's portability claim: the assigner is policy-agnostic.
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  const auto result =
      testing::run(workload(4, {job(1, 0, 5000, 5400, 2)}), models_,
                   BasePolicy::kFcfs, dvfs);
  EXPECT_EQ(result.jobs[0].gear, 0);
  EXPECT_EQ(result.reduced_jobs, 1);
}

TEST_F(FcfsTest, EasyNeverWorseOnTheseTraces) {
  // Sanity anchor on fixed traces: EASY's avg wait must not exceed FCFS's
  // (backfilling only uses otherwise-idle CPUs here).
  const wl::Workload load =
      workload(4, {job(1, 0, 1000, 1200, 3), job(2, 10, 500, 600, 4),
                   job(3, 20, 100, 150, 1), job(4, 25, 200, 250, 1)});
  const auto easy = testing::run(load, models_, BasePolicy::kEasy);
  const auto fcfs = testing::run(load, models_, BasePolicy::kFcfs);
  EXPECT_LE(easy.avg_wait, fcfs.avg_wait);
}

}  // namespace
}  // namespace bsld::core
