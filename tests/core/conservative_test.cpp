#include "core/conservative.hpp"

#include <gtest/gtest.h>

#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::core {
namespace {

using testing::Models;
using testing::job;
using testing::workload;

class ConservativeTest : public ::testing::Test {
 protected:
  Models models_;
};

TEST_F(ConservativeTest, RequiresCollaborators) {
  EXPECT_THROW(
      ConservativeBackfilling(nullptr, std::make_unique<TopFrequency>()),
      Error);
  EXPECT_THROW(
      ConservativeBackfilling(cluster::make_selector("FirstFit"), nullptr),
      Error);
}

TEST_F(ConservativeTest, NameReflectsComposition) {
  const ConservativeBackfilling policy(cluster::make_selector("FirstFit"),
                                       std::make_unique<TopFrequency>());
  EXPECT_EQ(policy.name(), "CONS[FirstFit,Ftop]");
}

TEST_F(ConservativeTest, BackfillsIntoHolesLikeEasy) {
  // Short narrow job slides ahead of a wide head without delaying it.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1200, 3), job(2, 10, 500, 600, 4),
                   job(3, 20, 100, 150, 1)}),
      models_, BasePolicy::kConservative);
  EXPECT_EQ(result.jobs[2].start, 20);
  EXPECT_EQ(result.jobs[1].start, 1000);
}

TEST_F(ConservativeTest, ProtectsEveryReservationNotJustTheHead) {
  // 4 CPUs. Job 1 holds everything until 1000 (req == run). Queue: job 2
  // (4 CPUs, long) then job 3 (4 CPUs, short) then job 4 (1 CPU, runs 950).
  // EASY reserves only for job 2 (start 1000) and would happily backfill
  // job 4 anywhere it fits now — nowhere, so both wait. The interesting
  // case: after job 1 ends, job 4 must not start in a way that delays job
  // 3's reservation (the *second* queued job) under conservative rules.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1000, 4), job(2, 10, 500, 500, 4),
                   job(3, 20, 200, 200, 4), job(4, 30, 950, 1000, 1)}),
      models_, BasePolicy::kConservative);
  // Plan: job2 @1000-1500, job3 @1500-1700, job4 may start @1700 or slot
  // into nothing earlier (its 1000 s crosses both reservations).
  EXPECT_EQ(result.jobs[1].start, 1000);
  EXPECT_EQ(result.jobs[2].start, 1500);
  EXPECT_EQ(result.jobs[3].start, 1700);
}

TEST_F(ConservativeTest, ShortJobUsesHoleBetweenReservations) {
  // Like above but job 4 fits exactly into the 1000..1500 spare CPU — wait,
  // job 2 uses all 4 CPUs, so the only hole is after 1700. Give job 2 just
  // 3 CPUs instead: job 4 (1 CPU, 400 s) fits alongside it at 1000.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1000, 4), job(2, 10, 500, 500, 3),
                   job(3, 20, 200, 200, 4), job(4, 30, 400, 450, 1)}),
      models_, BasePolicy::kConservative);
  EXPECT_EQ(result.jobs[1].start, 1000);
  EXPECT_EQ(result.jobs[3].start, 1000);  // hole next to job 2
  EXPECT_EQ(result.jobs[2].start, 1500);  // still on time
}

TEST_F(ConservativeTest, EarlyCompletionCompressesSchedule) {
  const auto result = testing::run(
      workload(2, {job(1, 0, 300, 2000, 2), job(2, 10, 100, 200, 2)}),
      models_, BasePolicy::kConservative);
  EXPECT_EQ(result.jobs[1].start, 300);  // compressed to the real end
}

TEST_F(ConservativeTest, ComposesWithDvfsAssigner) {
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  const auto result =
      testing::run(workload(4, {job(1, 0, 5000, 5400, 2)}), models_,
                   BasePolicy::kConservative, dvfs);
  EXPECT_EQ(result.jobs[0].gear, 0);
  EXPECT_EQ(result.reduced_jobs, 1);
}

TEST_F(ConservativeTest, NeverWorseThanFcfsOnTheseTraces) {
  const wl::Workload load =
      workload(8, {job(1, 0, 1000, 1200, 6), job(2, 10, 500, 600, 8),
                   job(3, 20, 100, 150, 2), job(4, 25, 200, 250, 1),
                   job(5, 40, 400, 500, 2)});
  const auto cons = testing::run(load, models_, BasePolicy::kConservative);
  const auto fcfs = testing::run(load, models_, BasePolicy::kFcfs);
  EXPECT_LE(cons.avg_wait, fcfs.avg_wait);
}

TEST_F(ConservativeTest, DrainsEverythingDeterministically) {
  std::vector<wl::Job> jobs;
  for (int i = 0; i < 60; ++i) {
    jobs.push_back(job(i + 1, i * 37, 200 + (i % 7) * 100,
                       300 + (i % 7) * 100, 1 + (i % 8)));
  }
  const wl::Workload load = workload(8, jobs);
  const auto a = testing::run(load, models_, BasePolicy::kConservative);
  const auto b = testing::run(load, models_, BasePolicy::kConservative);
  ASSERT_EQ(a.jobs.size(), 60u);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].start, b.jobs[i].start);
    EXPECT_EQ(a.jobs[i].gear, b.jobs[i].gear);
  }
}

}  // namespace
}  // namespace bsld::core
