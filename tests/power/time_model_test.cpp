#include "power/time_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::power {
namespace {

TEST(TimeModelTest, TopGearHasUnitCoefficient) {
  const BetaTimeModel model(cluster::paper_gear_set(), 0.5);
  EXPECT_DOUBLE_EQ(model.coefficient(model.gears().top_index()), 1.0);
}

TEST(TimeModelTest, BetaZeroMakesFrequencyIrrelevant) {
  const BetaTimeModel model(cluster::paper_gear_set(), 0.0);
  for (GearIndex g = 0; g <= model.gears().top_index(); ++g) {
    EXPECT_DOUBLE_EQ(model.coefficient(g), 1.0);
    EXPECT_EQ(model.scale_duration(12345, g), 12345);
  }
}

TEST(TimeModelTest, BetaOneHalvingFrequencyDoublesRuntime) {
  // Eq. 5 with beta=1 and f = fmax/2: T(f)/T(fmax) = (2 - 1) + 1 = 2.
  const cluster::GearSet gears({{1.0, 1.0}, {2.0, 1.2}});
  const BetaTimeModel model(gears, 1.0);
  EXPECT_DOUBLE_EQ(model.coefficient(0), 2.0);
  EXPECT_EQ(model.scale_duration(100, 0), 200);
}

TEST(TimeModelTest, PaperCoefficientsBetaHalf) {
  const BetaTimeModel model(cluster::paper_gear_set(), 0.5);
  EXPECT_NEAR(model.coefficient(0), 0.5 * (2.3 / 0.8 - 1.0) + 1.0, 1e-12);
  EXPECT_NEAR(model.coefficient(0), 1.9375, 1e-12);
  EXPECT_NEAR(model.coefficient(2), 1.3214, 1e-4);
}

TEST(TimeModelTest, CoefficientsDecreaseWithGear) {
  const BetaTimeModel model(cluster::paper_gear_set(), 0.5);
  for (GearIndex g = 1; g <= model.gears().top_index(); ++g) {
    EXPECT_LT(model.coefficient(g), model.coefficient(g - 1));
  }
}

TEST(TimeModelTest, ScaleDurationRoundsToWholeSeconds) {
  const BetaTimeModel model(cluster::paper_gear_set(), 0.5);
  // 100 * 1.9375 = 193.75 -> 194.
  EXPECT_EQ(model.scale_duration(100, 0), 194);
  // Top gear is the identity.
  EXPECT_EQ(model.scale_duration(100, 5), 100);
}

TEST(TimeModelTest, ScaleDurationMonotoneInDuration) {
  const BetaTimeModel model(cluster::paper_gear_set(), 0.5);
  for (GearIndex g = 0; g <= model.gears().top_index(); ++g) {
    Time previous = 0;
    for (const Time d : {0, 1, 2, 10, 599, 600, 601, 86400}) {
      const Time scaled = model.scale_duration(d, g);
      EXPECT_GE(scaled, previous);
      previous = scaled;
    }
  }
}

TEST(TimeModelTest, PositiveDurationsStayPositive) {
  const BetaTimeModel model(cluster::paper_gear_set(), 0.5);
  EXPECT_EQ(model.scale_duration(0, 0), 0);
  EXPECT_GE(model.scale_duration(1, 0), 1);
}

TEST(TimeModelTest, ScaledAtLeastOriginal) {
  // Coef >= 1 always, so dilation can never shorten a job.
  const BetaTimeModel model(cluster::paper_gear_set(), 0.7);
  for (GearIndex g = 0; g <= model.gears().top_index(); ++g) {
    for (const Time d : {1, 17, 600, 100000}) {
      EXPECT_GE(model.scale_duration(d, g), d);
    }
  }
}

TEST(TimeModelTest, InvalidInputsRejected) {
  EXPECT_THROW(BetaTimeModel(cluster::paper_gear_set(), -0.1), Error);
  EXPECT_THROW(BetaTimeModel(cluster::paper_gear_set(), 1.1), Error);
  const BetaTimeModel model(cluster::paper_gear_set(), 0.5);
  EXPECT_THROW((void)model.coefficient(99), Error);
  EXPECT_THROW((void)model.scale_duration(-1, 0), Error);
}

// Property sweep: Coef(f) = beta*(fmax/f - 1) + 1 across betas and gears.
class CoefficientFormulaTest
    : public ::testing::TestWithParam<std::tuple<double, GearIndex>> {};

TEST_P(CoefficientFormulaTest, MatchesEquation5) {
  const auto& [beta, gear] = GetParam();
  const cluster::GearSet gears = cluster::paper_gear_set();
  const BetaTimeModel model(gears, beta);
  const double expected =
      beta * (gears.top().frequency_ghz / gears[gear].frequency_ghz - 1.0) + 1.0;
  EXPECT_NEAR(model.coefficient(gear), expected, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CoefficientFormulaTest,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

}  // namespace
}  // namespace bsld::power
