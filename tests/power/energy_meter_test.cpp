#include "power/energy_meter.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::power {
namespace {

class EnergyMeterTest : public ::testing::Test {
 protected:
  PowerModel model_{cluster::paper_gear_set()};
};

TEST_F(EnergyMeterTest, SingleExecutionAccounting) {
  EnergyMeter meter(model_);
  const GearIndex top = model_.gears().top_index();
  meter.add_execution(4, top, 100);  // 400 core-seconds at Ftop

  const EnergyReport report = meter.report(8, 200);
  EXPECT_DOUBLE_EQ(report.busy_core_seconds, 400.0);
  EXPECT_NEAR(report.computational_joules, 400.0 * model_.active_power(top),
              1e-9);
  // Idle: 8 cpus * 200 s - 400 busy = 1200 idle core-seconds.
  EXPECT_DOUBLE_EQ(report.idle_core_seconds, 1200.0);
  EXPECT_NEAR(report.idle_joules, 1200.0 * model_.idle_power(), 1e-9);
  EXPECT_NEAR(report.total_joules,
              report.computational_joules + report.idle_joules, 1e-9);
}

TEST_F(EnergyMeterTest, LowerGearExecutionsCostLessPerSecond) {
  EnergyMeter low(model_);
  EnergyMeter top(model_);
  low.add_execution(1, 0, 1000);
  top.add_execution(1, model_.gears().top_index(), 1000);
  EXPECT_LT(low.report(1, 1000).computational_joules,
            top.report(1, 1000).computational_joules);
}

TEST_F(EnergyMeterTest, PerGearTallies) {
  EnergyMeter meter(model_);
  meter.add_execution(2, 0, 50);
  meter.add_execution(3, 0, 10);
  meter.add_execution(1, 5, 100);
  EXPECT_DOUBLE_EQ(meter.core_seconds_at(0), 130.0);
  EXPECT_DOUBLE_EQ(meter.core_seconds_at(5), 100.0);
  EXPECT_EQ(meter.executions_at(0), 2);
  EXPECT_EQ(meter.executions_at(5), 1);
  EXPECT_EQ(meter.executions_at(3), 0);
}

TEST_F(EnergyMeterTest, ComputationalNeverExceedsTotal) {
  EnergyMeter meter(model_);
  meter.add_execution(4, 2, 500);
  const EnergyReport report = meter.report(4, 1000);
  EXPECT_LE(report.computational_joules, report.total_joules);
  EXPECT_GE(report.idle_joules, 0.0);
}

TEST_F(EnergyMeterTest, FullMachineHasNoIdleEnergy) {
  EnergyMeter meter(model_);
  meter.add_execution(4, 1, 1000);
  const EnergyReport report = meter.report(4, 1000);
  EXPECT_DOUBLE_EQ(report.idle_core_seconds, 0.0);
  EXPECT_DOUBLE_EQ(report.idle_joules, 0.0);
}

TEST_F(EnergyMeterTest, CapacityViolationDetected) {
  EnergyMeter meter(model_);
  meter.add_execution(4, 1, 1000);  // 4000 core-seconds
  EXPECT_THROW((void)meter.report(2, 1000), Error);  // capacity only 2000
}

TEST_F(EnergyMeterTest, ZeroRuntimeExecutionIsFree) {
  EnergyMeter meter(model_);
  meter.add_execution(4, 1, 0);
  EXPECT_DOUBLE_EQ(meter.report(4, 10).computational_joules, 0.0);
  EXPECT_EQ(meter.executions_at(1), 1);
}

TEST_F(EnergyMeterTest, InvalidInputsRejected) {
  EnergyMeter meter(model_);
  EXPECT_THROW(meter.add_execution(0, 1, 10), Error);
  EXPECT_THROW(meter.add_execution(1, -1, 10), Error);
  EXPECT_THROW(meter.add_execution(1, 99, 10), Error);
  EXPECT_THROW(meter.add_execution(1, 1, -5), Error);
  EXPECT_THROW((void)meter.report(0, 10), Error);
  EXPECT_THROW((void)meter.report(4, -1), Error);
  EXPECT_THROW((void)meter.core_seconds_at(99), Error);
}

TEST_F(EnergyMeterTest, EnergyScaleInvariance) {
  // Doubling the anchor wattage doubles energies but not their ratio —
  // the property that makes the paper's normalized figures anchor-free.
  PowerModelConfig big;
  big.top_active_power_watts = 190.0;
  const PowerModel scaled(cluster::paper_gear_set(), big);
  EnergyMeter a(model_);
  EnergyMeter b(scaled);
  a.add_execution(2, 1, 300);
  b.add_execution(2, 1, 300);
  const EnergyReport ra = a.report(4, 500);
  const EnergyReport rb = b.report(4, 500);
  EXPECT_NEAR(rb.computational_joules / ra.computational_joules, 2.0, 1e-9);
  EXPECT_NEAR(rb.total_joules / ra.total_joules, 2.0, 1e-9);
}

}  // namespace
}  // namespace bsld::power
