#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::power {
namespace {

TEST(PowerModelTest, StaticShareAtTopIsCalibrated) {
  const PowerModel model(cluster::paper_gear_set());
  const GearIndex top = model.gears().top_index();
  EXPECT_NEAR(model.static_power(top) / model.active_power(top), 0.25, 1e-12);
}

TEST(PowerModelTest, TopActivePowerMatchesAnchor) {
  PowerModelConfig config;
  config.top_active_power_watts = 120.0;
  const PowerModel model(cluster::paper_gear_set(), config);
  EXPECT_NEAR(model.active_power(model.gears().top_index()), 120.0, 1e-9);
}

TEST(PowerModelTest, IdleIsTwentyOnePercentOfTopActive) {
  // Paper §4: "an idle processor consumes 21% of the power consumed by a
  // processor executing a job at the highest frequency".
  const PowerModel model(cluster::paper_gear_set());
  EXPECT_NEAR(model.idle_fraction_of_top(), 0.213, 0.001);
}

TEST(PowerModelTest, DynamicFollowsFV2) {
  const PowerModel model(cluster::paper_gear_set());
  // P_dyn ratio between two gears = (f1 V1^2)/(f2 V2^2).
  const double ratio = model.dynamic_power(0) / model.dynamic_power(5);
  EXPECT_NEAR(ratio, (0.8 * 1.0 * 1.0) / (2.3 * 1.5 * 1.5), 1e-12);
}

TEST(PowerModelTest, StaticLinearInVoltage) {
  const PowerModel model(cluster::paper_gear_set());
  const double ratio = model.static_power(0) / model.static_power(5);
  EXPECT_NEAR(ratio, 1.0 / 1.5, 1e-12);
}

TEST(PowerModelTest, ActivePowerStrictlyIncreasingInGear) {
  const PowerModel model(cluster::paper_gear_set());
  for (GearIndex g = 1; g <= model.gears().top_index(); ++g) {
    EXPECT_GT(model.active_power(g), model.active_power(g - 1));
  }
}

TEST(PowerModelTest, IdleBelowLowestActive) {
  const PowerModel model(cluster::paper_gear_set());
  EXPECT_LT(model.idle_power(), model.active_power(0));
  EXPECT_GT(model.idle_power(), 0.0);
}

TEST(PowerModelTest, ActivityRatioScalesIdleDynamicOnly) {
  PowerModelConfig high;
  high.activity_ratio = 5.0;
  const PowerModel base(cluster::paper_gear_set());
  const PowerModel model(cluster::paper_gear_set(), high);
  // Higher running/idle activity ratio => lower idle power, same active.
  EXPECT_LT(model.idle_power(), base.idle_power());
  EXPECT_NEAR(model.active_power(5), base.active_power(5), 1e-9);
}

TEST(PowerModelTest, ZeroStaticFraction) {
  PowerModelConfig config;
  config.static_fraction_at_top = 0.0;
  const PowerModel model(cluster::paper_gear_set(), config);
  EXPECT_NEAR(model.static_power(0), 0.0, 1e-12);
  EXPECT_NEAR(model.active_power(5), model.dynamic_power(5), 1e-9);
}

TEST(PowerModelTest, InvalidConfigsRejected) {
  PowerModelConfig config;
  config.activity_ratio = 0.5;
  EXPECT_THROW(PowerModel(cluster::paper_gear_set(), config), Error);
  config = {};
  config.static_fraction_at_top = 1.0;
  EXPECT_THROW(PowerModel(cluster::paper_gear_set(), config), Error);
  config = {};
  config.top_active_power_watts = 0.0;
  EXPECT_THROW(PowerModel(cluster::paper_gear_set(), config), Error);
}

TEST(PowerModelTest, ConfigFromFile) {
  const util::Config config = util::Config::parse(
      "power.activity_ratio = 3.0\n"
      "power.top_active_power_watts = 80\n");
  const PowerModelConfig parsed = power_config_from(config);
  EXPECT_DOUBLE_EQ(parsed.activity_ratio, 3.0);
  EXPECT_DOUBLE_EQ(parsed.top_active_power_watts, 80.0);
  EXPECT_DOUBLE_EQ(parsed.static_fraction_at_top, 0.25);  // default kept
}

}  // namespace
}  // namespace bsld::power
