#include "report/sweep.hpp"

#include <gtest/gtest.h>

#include "report/figures.hpp"
#include "util/error.hpp"

namespace bsld::report {
namespace {

std::vector<RunSpec> small_grid() {
  std::vector<RunSpec> specs;
  for (const wl::Archive archive :
       {wl::Archive::kCTC, wl::Archive::kSDSC, wl::Archive::kSDSCBlue}) {
    for (const double threshold : {1.5, 2.0}) {
      RunSpec spec;
      spec.archive = archive;
      spec.num_jobs = 250;
      core::DvfsConfig dvfs;
      dvfs.bsld_threshold = threshold;
      dvfs.wq_threshold = 4;
      spec.dvfs = dvfs;
      specs.push_back(spec);
    }
  }
  return specs;
}

TEST(SweepTest, ParallelEqualsSerial) {
  const std::vector<RunSpec> specs = small_grid();
  const auto serial = run_all(specs, 1);
  const auto parallel = run_all(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].sim.avg_bsld, parallel[i].sim.avg_bsld);
    EXPECT_DOUBLE_EQ(serial[i].sim.energy.total_joules,
                     parallel[i].sim.energy.total_joules);
    EXPECT_EQ(serial[i].sim.reduced_jobs, parallel[i].sim.reduced_jobs);
  }
}

TEST(SweepTest, ResultsComeBackInInputOrder) {
  const std::vector<RunSpec> specs = small_grid();
  const auto results = run_all(specs, 3);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].spec.archive, specs[i].archive);
    EXPECT_DOUBLE_EQ(results[i].spec.dvfs->bsld_threshold,
                     specs[i].dvfs->bsld_threshold);
  }
}

TEST(SweepTest, EmptyInput) {
  EXPECT_TRUE(run_all({}).empty());
}

TEST(SweepTest, MoreThreadsThanWork) {
  std::vector<RunSpec> specs;
  RunSpec spec;
  spec.archive = wl::Archive::kSDSC;
  spec.num_jobs = 200;
  specs.push_back(spec);
  const auto results = run_all(specs, 16);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].sim.avg_bsld, 0.0);
}

// Regression: the thread-count clamp in run_all must hold at both
// boundaries — an explicit thread count with zero specs (run_all returns
// the empty result before any worker is spawned, for every thread count),
// and a thread count far above the spec count (clamped down to the spec
// count, and still bit-identical to the serial run).
TEST(SweepTest, EmptyInputWithExplicitThreads) {
  EXPECT_TRUE(run_all({}, 1).empty());
  EXPECT_TRUE(run_all({}, 8).empty());
  EXPECT_TRUE(run_all({}, 1024).empty());
}

TEST(SweepTest, ThreadCountFarAboveSpecCountMatchesSerial) {
  std::vector<RunSpec> specs;
  for (const wl::Archive archive : {wl::Archive::kCTC, wl::Archive::kSDSC}) {
    RunSpec spec;
    spec.archive = archive;
    spec.num_jobs = 150;
    specs.push_back(spec);
  }
  const auto serial = run_all(specs, 1);
  const auto clamped = run_all(specs, 1024);  // clamps to specs.size() == 2
  ASSERT_EQ(serial.size(), clamped.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].sim.avg_bsld, clamped[i].sim.avg_bsld);
    EXPECT_DOUBLE_EQ(serial[i].sim.energy.total_joules,
                     clamped[i].sim.energy.total_joules);
    EXPECT_EQ(serial[i].sim.makespan, clamped[i].sim.makespan);
  }
}

TEST(SweepTest, ExceptionsPropagate) {
  std::vector<RunSpec> specs = small_grid();
  specs[2].size_scale = -1.0;  // invalid spec fails inside a worker
  EXPECT_THROW((void)run_all(specs, 4), Error);
}

TEST(FiguresTest, PaperGridsHaveExpectedShapes) {
  EXPECT_EQ(paper_bsld_thresholds().size(), 3u);
  EXPECT_EQ(paper_wq_thresholds().size(), 4u);
  EXPECT_EQ(paper_size_scales().size(), 7u);
  EXPECT_EQ(wq_label(std::nullopt), "NO");
  EXPECT_EQ(wq_label(std::int64_t{16}), "16");

  const OriginalSizeGrid original = original_size_grid(100);
  EXPECT_EQ(original.dvfs_specs.size(), 5u * 3u * 4u);
  EXPECT_EQ(original.baseline_specs.size(), 5u);

  const EnlargedGrid enlarged = enlarged_grid(std::nullopt, 100);
  EXPECT_EQ(enlarged.dvfs_specs.size(), 5u * 7u);
  for (const RunSpec& spec : enlarged.dvfs_specs) {
    ASSERT_TRUE(spec.dvfs.has_value());
    EXPECT_DOUBLE_EQ(spec.dvfs->bsld_threshold, 2.0);
    EXPECT_FALSE(spec.dvfs->wq_threshold.has_value());
  }
}

TEST(FiguresTest, RunGridSplitsAndBaselineLookupWorks) {
  const OriginalSizeGrid grid = original_size_grid(200);
  // Only a slice, to keep the test quick: two archives' worth.
  std::vector<RunSpec> dvfs(grid.dvfs_specs.begin(),
                            grid.dvfs_specs.begin() + 4);
  std::vector<RunSpec> baselines(grid.baseline_specs.begin(),
                                 grid.baseline_specs.begin() + 1);
  const GridResults results = run_grid(dvfs, baselines, 4);
  EXPECT_EQ(results.dvfs.size(), 4u);
  EXPECT_EQ(results.baselines.size(), 1u);
  EXPECT_EQ(baseline_for(results, wl::Archive::kCTC).spec.archive,
            wl::Archive::kCTC);
  EXPECT_THROW((void)baseline_for(results, wl::Archive::kSDSC), Error);
}

}  // namespace
}  // namespace bsld::report
