#include "report/sweep.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "report/figures.hpp"
#include "report/result_cache.hpp"
#include "report/sinks.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/parse.hpp"

namespace bsld::report {
namespace {

std::vector<RunSpec> small_grid() {
  std::vector<RunSpec> specs;
  for (const wl::Archive archive :
       {wl::Archive::kCTC, wl::Archive::kSDSC, wl::Archive::kSDSCBlue}) {
    for (const double threshold : {1.5, 2.0}) {
      RunSpec spec;
      spec.workload = wl::WorkloadSource::from_archive(archive, 250);
      core::DvfsConfig dvfs;
      dvfs.bsld_threshold = threshold;
      dvfs.wq_threshold = 4;
      spec.policy.dvfs = dvfs;
      specs.push_back(spec);
    }
  }
  return specs;
}

TEST(SweepTest, ParallelEqualsSerial) {
  const std::vector<RunSpec> specs = small_grid();
  const auto serial = run_all(specs, 1);
  const auto parallel = run_all(specs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].sim().avg_bsld, parallel[i].sim().avg_bsld);
    EXPECT_DOUBLE_EQ(serial[i].sim().energy.total_joules,
                     parallel[i].sim().energy.total_joules);
    EXPECT_EQ(serial[i].sim().reduced_jobs, parallel[i].sim().reduced_jobs);
  }
}

TEST(SweepTest, ResultsComeBackInInputOrder) {
  const std::vector<RunSpec> specs = small_grid();
  const auto results = run_all(specs, 3);
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(results[i].spec.workload.archive, specs[i].workload.archive);
    EXPECT_DOUBLE_EQ(results[i].spec.policy.dvfs->bsld_threshold,
                     specs[i].policy.dvfs->bsld_threshold);
  }
}

TEST(SweepTest, EmptyInput) {
  EXPECT_TRUE(run_all({}).empty());
}

TEST(SweepTest, MoreThreadsThanWork) {
  std::vector<RunSpec> specs;
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSC, 200);
  specs.push_back(spec);
  const auto results = run_all(specs, 16);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].sim().avg_bsld, 0.0);
}

// Regression: the thread-count clamp in run_all must hold at both
// boundaries — an explicit thread count with zero specs (run_all returns
// the empty result before any worker is spawned, for every thread count),
// and a thread count far above the spec count (clamped down to the spec
// count, and still bit-identical to the serial run).
TEST(SweepTest, EmptyInputWithExplicitThreads) {
  EXPECT_TRUE(run_all({}, 1).empty());
  EXPECT_TRUE(run_all({}, 8).empty());
  EXPECT_TRUE(run_all({}, 1024).empty());
}

TEST(SweepTest, ThreadCountFarAboveSpecCountMatchesSerial) {
  std::vector<RunSpec> specs;
  for (const wl::Archive archive : {wl::Archive::kCTC, wl::Archive::kSDSC}) {
    RunSpec spec;
    spec.workload = wl::WorkloadSource::from_archive(archive, 150);
    specs.push_back(spec);
  }
  const auto serial = run_all(specs, 1);
  const auto clamped = run_all(specs, 1024);  // clamps to specs.size() == 2
  ASSERT_EQ(serial.size(), clamped.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].sim().avg_bsld, clamped[i].sim().avg_bsld);
    EXPECT_DOUBLE_EQ(serial[i].sim().energy.total_joules,
                     clamped[i].sim().energy.total_joules);
    EXPECT_EQ(serial[i].sim().makespan, clamped[i].sim().makespan);
  }
}

TEST(SweepTest, ExceptionsPropagate) {
  std::vector<RunSpec> specs = small_grid();
  specs[2].size_scale = -1.0;  // invalid spec fails inside a worker
  EXPECT_THROW((void)run_all(specs, 4), Error);
}

TEST(SweepRunnerTest, DedupExecutesIdenticalSpecsOnce) {
  // A grid with heavy duplication: 3 distinct specs, each submitted 3x.
  std::vector<RunSpec> distinct = small_grid();
  distinct.resize(3);
  std::vector<RunSpec> specs;
  for (int repeat = 0; repeat < 3; ++repeat) {
    specs.insert(specs.end(), distinct.begin(), distinct.end());
  }

  SweepRunner::Options dedup_on;
  dedup_on.threads = 2;
  SweepRunner runner(dedup_on);
  const auto deduped = runner.run(specs);
  EXPECT_EQ(runner.progress().total, 9u);
  EXPECT_EQ(runner.progress().completed, 9u);
  EXPECT_EQ(runner.progress().executed, 3u);
  EXPECT_EQ(runner.progress().deduplicated, 6u);

  SweepRunner::Options dedup_off;
  dedup_off.threads = 2;
  dedup_off.dedup = false;
  SweepRunner full(dedup_off);
  const auto all = full.run(specs);
  EXPECT_EQ(full.progress().executed, 9u);
  EXPECT_EQ(full.progress().deduplicated, 0u);

  ASSERT_EQ(deduped.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(deduped[i].spec, all[i].spec);
    EXPECT_DOUBLE_EQ(deduped[i].sim().avg_bsld, all[i].sim().avg_bsld);
    EXPECT_DOUBLE_EQ(deduped[i].sim().energy.total_joules,
                     all[i].sim().energy.total_joules);
    EXPECT_EQ(deduped[i].sim().makespan, all[i].sim().makespan);
  }
}

TEST(SweepRunnerTest, ProgressCallbackObservesEveryCompletion) {
  const std::vector<RunSpec> specs = small_grid();
  SweepRunner runner(SweepRunner::Options{.threads = 3, .dedup = true});
  std::size_t calls = 0;
  std::size_t last_completed = 0;
  runner.on_progress([&](const SweepRunner::Progress& progress,
                         const RunSpec& finished) {
    ++calls;
    EXPECT_GT(progress.completed, last_completed);  // monotone under the lock
    last_completed = progress.completed;
    EXPECT_EQ(progress.total, specs.size());
    EXPECT_FALSE(finished.label().empty());
  });
  (void)runner.run(specs);
  EXPECT_EQ(calls, specs.size());  // small_grid has no duplicates
  EXPECT_EQ(last_completed, specs.size());
}

TEST(SweepRunnerTest, SinksSeeEverySlotExactlyOnce) {
  // Duplicate the first spec so dedup fans one run out to two slots.
  std::vector<RunSpec> specs = small_grid();
  specs.resize(3);
  specs.push_back(specs[0]);

  class CountingSink final : public ResultSink {
   public:
    std::vector<int> seen;
    std::size_t done_total = 0;
    void on_result(std::size_t index, const RunResult& result) override {
      ASSERT_LT(index, seen.size());
      ++seen[index];
      EXPECT_GT(result.sim().avg_bsld, 0.0);
    }
    void on_done(std::size_t total) override { done_total = total; }
  };
  CountingSink sink;
  sink.seen.assign(specs.size(), 0);

  SweepRunner runner(SweepRunner::Options{.threads = 2, .dedup = true});
  runner.add_sink(sink);
  (void)runner.run(specs);
  for (const int count : sink.seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(sink.done_total, specs.size());
}

TEST(SweepRunnerTest, CsvSinkStreamsHeaderAndRows) {
  std::vector<RunSpec> specs = small_grid();
  specs.resize(2);
  std::ostringstream out;
  CsvResultSink sink(out);
  SweepRunner runner(SweepRunner::Options{.threads = 2, .dedup = true});
  runner.add_sink(sink);
  (void)runner.run(specs);

  const auto rows = util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), 3u);  // header + one row per spec
  EXPECT_EQ(rows[0], result_row_headers());
  // Completion order is nondeterministic; the index column recovers it.
  std::vector<std::string> indices = {rows[1][0], rows[2][0]};
  std::sort(indices.begin(), indices.end());
  EXPECT_EQ(indices, (std::vector<std::string>{"0", "1"}));
}

TEST(SweepRunnerTest, TableSinkCollectsInGridOrder) {
  std::vector<RunSpec> specs = small_grid();
  specs.resize(3);
  TableResultSink sink;
  SweepRunner runner(SweepRunner::Options{.threads = 3, .dedup = true});
  runner.add_sink(sink);
  const auto results = runner.run(specs);
  const util::Table table = sink.table();
  EXPECT_EQ(table.rows(), specs.size());
  const std::string rendered = table.to_string();
  for (const auto& result : results) {
    EXPECT_NE(rendered.find(result.spec.label()), std::string::npos);
  }
}

TEST(SweepRunnerTest, RunAllIsAThinWrapper) {
  std::vector<RunSpec> specs = small_grid();
  specs.resize(2);
  const auto wrapped = run_all(specs, 2);
  SweepRunner runner(SweepRunner::Options{.threads = 2, .dedup = true});
  const auto direct = runner.run(specs);
  ASSERT_EQ(wrapped.size(), direct.size());
  for (std::size_t i = 0; i < wrapped.size(); ++i) {
    EXPECT_DOUBLE_EQ(wrapped[i].sim().avg_bsld, direct[i].sim().avg_bsld);
  }
}

TEST(ShardTest, PartitionIsDeterministicAndComplete) {
  const std::vector<RunSpec> specs = small_grid();
  for (const RunSpec& spec : specs) {
    const unsigned shard = shard_of(spec, 3);
    EXPECT_LT(shard, 3u);
    EXPECT_EQ(shard, shard_of(spec, 3));  // stable.
    EXPECT_EQ(shard_of(spec, 1), 0u);
  }
  EXPECT_THROW((void)shard_of(specs[0], 0), Error);
}

TEST(ShardTest, TwoShardsPartitionSlotsExactlyOnce) {
  const std::vector<RunSpec> specs = small_grid();

  class IndexSink final : public ResultSink {
   public:
    std::vector<std::size_t> indices;
    void on_result(std::size_t index, const RunResult& result) override {
      indices.push_back(index);
      EXPECT_GT(result.sim().avg_bsld, 0.0);
    }
  };

  std::vector<std::size_t> seen;
  std::size_t total_skipped = 0;
  for (unsigned shard = 0; shard < 2; ++shard) {
    IndexSink sink;
    SweepRunner::Options options;
    options.threads = 2;
    options.shard_index = shard;
    options.shard_count = 2;
    SweepRunner runner(options);
    runner.add_sink(sink);
    const auto results = runner.run(specs);
    ASSERT_EQ(results.size(), specs.size());
    // Owned slots carry real results; foreign slots only their spec.
    for (const std::size_t index : sink.indices) {
      EXPECT_EQ(shard_of(specs[index], 2), shard);
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_EQ(results[i].spec, specs[i]);
      if (shard_of(specs[i], 2) != shard) {
        EXPECT_EQ(results[i].sim().job_count, 0);  // untouched default.
      }
    }
    EXPECT_EQ(runner.progress().completed + runner.progress().shard_skipped,
              specs.size());
    total_skipped += runner.progress().shard_skipped;
    seen.insert(seen.end(), sink.indices.begin(), sink.indices.end());
  }
  // Union over both shards: every grid slot exactly once.
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(total_skipped, specs.size());  // each slot skipped by one shard.
}

TEST(ShardTest, ShardedUnionMatchesSerialRows) {
  // The C++-level half of the shard/merge parity criterion (the CLI end to
  // end lives in scripts/shard_smoke.sh, registered as a smoke ctest):
  // grid-ordered CSV rows of the two shards, interleaved by grid index,
  // must equal the serial run's byte for byte.
  const std::vector<RunSpec> specs = small_grid();

  const auto ordered_csv = [&](unsigned shard, unsigned count) {
    std::ostringstream out;
    CsvResultSink csv(out);
    ReorderingSink ordered(csv);
    SweepRunner::Options options;
    options.threads = 2;
    options.shard_index = shard;
    options.shard_count = count;
    SweepRunner runner(options);
    runner.add_sink(ordered);
    (void)runner.run(specs);
    return util::parse_csv(out.str());
  };

  const auto serial = ordered_csv(0, 1);
  const auto shard0 = ordered_csv(0, 2);
  const auto shard1 = ordered_csv(1, 2);
  ASSERT_EQ(serial.size(), specs.size() + 1);  // header + all rows.
  ASSERT_EQ(shard0.size() + shard1.size(), specs.size() + 2);

  // Merge by the index column (what bsldsim --merge-shards does).
  std::map<std::size_t, std::vector<std::string>> merged;
  for (const auto* shard : {&shard0, &shard1}) {
    for (std::size_t r = 1; r < shard->size(); ++r) {
      const std::size_t index = util::require_uint((*shard)[r][0], "index column");
      EXPECT_TRUE(merged.emplace(index, (*shard)[r]).second);
    }
  }
  ASSERT_EQ(merged.size(), specs.size());
  std::size_t row = 1;
  for (const auto& [index, cells] : merged) {
    EXPECT_EQ(cells, serial[row]) << "grid index " << index;
    row += 1;
  }
}

TEST(ShardTest, ShardOwningZeroSpecsYieldsEmptyResultsAndHeaderOnlyCsv) {
  // A shard whose partition holds zero specs (more shards than distinct
  // specs) is the degenerate case --merge-shards must also survive: the
  // run returns spec-only empty results, streams no rows (header-only
  // CSV), and still fires on_done.
  std::vector<RunSpec> specs(3, small_grid()[0]);  // 1 distinct spec.
  const unsigned owner = shard_of(specs[0], 2);
  const unsigned empty_shard = 1 - owner;

  std::ostringstream out;
  CsvResultSink csv(out);
  ReorderingSink ordered(csv);
  SweepRunner::Options options;
  options.threads = 2;
  options.shard_index = empty_shard;
  options.shard_count = 2;
  SweepRunner runner(options);
  runner.add_sink(ordered);
  const std::vector<RunResult> results = runner.run(specs);

  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].spec, specs[i]);  // spec preserved,
    EXPECT_EQ(results[i].sim().job_count, 0);  // nothing simulated.
  }
  EXPECT_EQ(runner.progress().executed, 0u);
  EXPECT_EQ(runner.progress().shard_skipped, specs.size());
  const auto rows = util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);  // the header only — on_done still ran.
  EXPECT_EQ(rows[0][0], "index");
}

TEST(ShardTest, InvalidShardOptionsThrow) {
  SweepRunner::Options bad_index;
  bad_index.shard_index = 2;
  bad_index.shard_count = 2;
  EXPECT_THROW((void)SweepRunner(bad_index).run(small_grid()), Error);

  SweepRunner::Options zero_count;
  zero_count.shard_count = 0;
  EXPECT_THROW((void)SweepRunner(zero_count).run(small_grid()), Error);
}

TEST(SweepRunnerTest, ReorderingSinkReplaysInGridOrder) {
  std::vector<RunSpec> specs = small_grid();
  std::ostringstream out;
  CsvResultSink csv(out);
  ReorderingSink ordered(csv);
  SweepRunner runner(SweepRunner::Options{.threads = 3, .dedup = true});
  runner.add_sink(ordered);
  (void)runner.run(specs);
  const auto rows = util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), specs.size() + 1);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    EXPECT_EQ(rows[r][0], std::to_string(r - 1));  // ascending indices.
  }
}

// --- submit(): the persistent-pool path behind bsldsim serve ------------

TEST(SubmitTest, SubmitMatchesRun) {
  const std::vector<RunSpec> specs = small_grid();
  const std::vector<RunResult> via_run = run_all(specs, 2);

  SweepRunner runner(SweepRunner::Options{.threads = 2});
  std::mutex mutex;
  std::map<std::size_t, double> streamed;
  SweepRunner::SubmitHandle handle = runner.submit(
      specs, [&](std::size_t index, const RunResult& result) {
        const std::lock_guard<std::mutex> lock(mutex);
        streamed[index] = result.sim().avg_bsld;
      });
  const std::vector<RunResult> via_submit = handle.wait();

  ASSERT_EQ(via_submit.size(), via_run.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(via_submit[i].spec, specs[i]);
    EXPECT_DOUBLE_EQ(via_submit[i].sim().avg_bsld, via_run[i].sim().avg_bsld);
    EXPECT_EQ(via_submit[i].sim().events_processed,
              via_run[i].sim().events_processed);
  }
  // Every slot was delivered exactly once through the callback.
  ASSERT_EQ(streamed.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_DOUBLE_EQ(streamed[i], via_run[i].sim().avg_bsld);
  }
  const SweepRunner::Progress progress = handle.progress();
  EXPECT_EQ(progress.total, specs.size());
  EXPECT_EQ(progress.completed, specs.size());
  EXPECT_EQ(progress.executed, specs.size());  // all distinct, cold.
}

TEST(SubmitTest, WithinBatchDuplicatesSimulateOnce) {
  std::vector<RunSpec> specs;
  for (int repeat = 0; repeat < 3; ++repeat) {
    specs.push_back(small_grid()[0]);
    specs.push_back(small_grid()[1]);
  }
  SweepRunner runner(SweepRunner::Options{.threads = 2});
  SweepRunner::SubmitHandle handle = runner.submit(specs);
  const std::vector<RunResult> results = handle.wait();
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t i = 2; i < specs.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].sim().avg_bsld, results[i % 2].sim().avg_bsld);
  }
  EXPECT_EQ(handle.progress().executed, 2u);
  EXPECT_EQ(handle.progress().deduplicated, 4u);
}

TEST(SubmitTest, ConcurrentBatchesShareOnePoolAndAgree) {
  const std::vector<RunSpec> specs = small_grid();
  const std::vector<RunResult> expected = run_all(specs, 2);

  SweepRunner runner(SweepRunner::Options{.threads = 3});
  constexpr int kClients = 4;
  std::vector<std::vector<RunResult>> outcomes(kClients);
  {
    std::vector<std::jthread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        outcomes[c] = runner.submit(specs).wait();
      });
    }
  }
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(outcomes[c].size(), specs.size()) << "client " << c;
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_DOUBLE_EQ(outcomes[c][i].sim().avg_bsld, expected[i].sim().avg_bsld);
      EXPECT_EQ(outcomes[c][i].spec, specs[i]);
    }
  }
}

TEST(SubmitTest, WarmBatchIsAnsweredWithoutTouchingThePool) {
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("bsld-submit-cache-" + std::to_string(::getpid()));
  std::filesystem::remove_all(root);
  {
    ResultCache cache(root);
    SweepRunner::Options options;
    options.threads = 2;
    options.cache = &cache;

    const std::vector<RunSpec> specs = small_grid();
    SweepRunner cold_runner(options);
    const std::vector<RunResult> cold = cold_runner.submit(specs).wait();

    // Fresh runner: a warm batch must resolve fully on the submitting
    // thread — zero simulations, all cache hits.
    SweepRunner warm_runner(options);
    SweepRunner::SubmitHandle handle = warm_runner.submit(specs);
    const std::vector<RunResult> warm = handle.wait();
    EXPECT_EQ(handle.progress().executed, 0u);
    EXPECT_EQ(handle.progress().cache_hits, specs.size());
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      EXPECT_DOUBLE_EQ(warm[i].sim().avg_bsld, cold[i].sim().avg_bsld);
      EXPECT_EQ(warm[i].sim().events_processed, cold[i].sim().events_processed);
    }
  }
  std::filesystem::remove_all(root);
}

TEST(SubmitTest, ShardedSubmitSkipsForeignSlotsSilently) {
  std::vector<RunSpec> specs(4, small_grid()[0]);  // one distinct spec.
  const unsigned owner = shard_of(specs[0], 2);
  SweepRunner::Options options;
  options.threads = 1;
  options.shard_index = 1 - owner;
  options.shard_count = 2;
  SweepRunner runner(options);

  std::mutex mutex;
  std::size_t delivered = 0;
  SweepRunner::SubmitHandle handle =
      runner.submit(specs, [&](std::size_t, const RunResult&) {
        const std::lock_guard<std::mutex> lock(mutex);
        delivered += 1;
      });
  const std::vector<RunResult> results = handle.wait();
  EXPECT_EQ(delivered, 0u);  // foreign slots never reach the callback.
  EXPECT_EQ(handle.progress().shard_skipped, specs.size());
  EXPECT_EQ(handle.progress().executed, 0u);
  for (const RunResult& result : results) {
    EXPECT_EQ(result.sim().job_count, 0);
  }
}

TEST(SubmitTest, ThrowingCallbackSurfacesAtWaitNotTerminate) {
  // A sink/callback failure on a pool worker must not std::terminate the
  // process (the daemon's no-crash guarantee); it resurfaces at wait().
  SweepRunner runner(SweepRunner::Options{.threads = 2});
  SweepRunner::SubmitHandle handle =
      runner.submit(small_grid(), [](std::size_t index, const RunResult&) {
        if (index == 1) throw Error("sink exploded");
      });
  EXPECT_THROW((void)handle.wait(), Error);
  // The pool survives and serves the next batch.
  EXPECT_EQ(runner.submit({small_grid()[0]}).wait().size(), 1u);
}

TEST(SubmitTest, SubmitAfterShutdownFailsAtWait) {
  // submit() must not throw mid-batch (queued slots would outlive the
  // caller's callback captures); a post-shutdown batch resolves as an
  // error surfaced by wait().
  SweepRunner runner(SweepRunner::Options{.threads = 1});
  (void)runner.submit({small_grid()[0]}).wait();
  runner.shutdown();
  SweepRunner::SubmitHandle handle = runner.submit({small_grid()[0]});
  EXPECT_THROW((void)handle.wait(), Error);
}

TEST(FiguresTest, PaperGridsHaveExpectedShapes) {
  EXPECT_EQ(paper_bsld_thresholds().size(), 3u);
  EXPECT_EQ(paper_wq_thresholds().size(), 4u);
  EXPECT_EQ(paper_size_scales().size(), 7u);
  EXPECT_EQ(wq_label(std::nullopt), "NO");
  EXPECT_EQ(wq_label(std::int64_t{16}), "16");

  const OriginalSizeGrid original = original_size_grid(100);
  EXPECT_EQ(original.dvfs_specs.size(), 5u * 3u * 4u);
  EXPECT_EQ(original.baseline_specs.size(), 5u);

  const EnlargedGrid enlarged = enlarged_grid(std::nullopt, 100);
  EXPECT_EQ(enlarged.dvfs_specs.size(), 5u * 7u);
  for (const RunSpec& spec : enlarged.dvfs_specs) {
    ASSERT_TRUE(spec.policy.dvfs.has_value());
    EXPECT_DOUBLE_EQ(spec.policy.dvfs->bsld_threshold, 2.0);
    EXPECT_FALSE(spec.policy.dvfs->wq_threshold.has_value());
  }
}

TEST(FiguresTest, RunGridSplitsAndBaselineLookupWorks) {
  const OriginalSizeGrid grid = original_size_grid(200);
  // Only a slice, to keep the test quick: two archives' worth.
  std::vector<RunSpec> dvfs(grid.dvfs_specs.begin(),
                            grid.dvfs_specs.begin() + 4);
  std::vector<RunSpec> baselines(grid.baseline_specs.begin(),
                                 grid.baseline_specs.begin() + 1);
  const GridResults results = run_grid(dvfs, baselines, 4);
  EXPECT_EQ(results.dvfs.size(), 4u);
  EXPECT_EQ(results.baselines.size(), 1u);
  EXPECT_EQ(baseline_for(results, wl::Archive::kCTC).spec.workload.archive,
            wl::Archive::kCTC);
  EXPECT_THROW((void)baseline_for(results, wl::Archive::kSDSC), Error);
}

}  // namespace
}  // namespace bsld::report
