#include "report/experiment.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::report {
namespace {

TEST(RunSpecTest, LabelFormats) {
  RunSpec spec;
  spec.archive = wl::Archive::kCTC;
  EXPECT_EQ(spec.label(), "CTC x1 EASY noDVFS");

  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 1.5;
  dvfs.wq_threshold = 16;
  spec.dvfs = dvfs;
  spec.size_scale = 1.2;
  EXPECT_EQ(spec.label(), "CTC x1.2 EASY BSLD<=1.5,WQ<=16");

  spec.dvfs->wq_threshold = std::nullopt;
  spec.base = core::BasePolicy::kFcfs;
  EXPECT_EQ(spec.label(), "CTC x1.2 FCFS BSLD<=1.5,WQ<=NO");
}

TEST(RunOneTest, DeterministicForEqualSpecs) {
  RunSpec spec;
  spec.archive = wl::Archive::kSDSC;
  spec.num_jobs = 400;
  const RunResult a = run_one(spec);
  const RunResult b = run_one(spec);
  EXPECT_DOUBLE_EQ(a.sim.avg_bsld, b.sim.avg_bsld);
  EXPECT_DOUBLE_EQ(a.sim.energy.total_joules, b.sim.energy.total_joules);
}

TEST(RunOneTest, SizeScaleChangesMachine) {
  RunSpec spec;
  spec.archive = wl::Archive::kSDSC;  // 128 CPUs
  spec.num_jobs = 300;
  spec.size_scale = 1.5;
  EXPECT_EQ(run_one(spec).sim.cpus, 192);
}

TEST(RunOneTest, ShrunkenMachineClampsJobSizes) {
  RunSpec spec;
  spec.archive = wl::Archive::kSDSC;
  spec.num_jobs = 300;
  spec.size_scale = 0.25;  // 32 CPUs; the trace has larger jobs
  const RunResult result = run_one(spec);
  EXPECT_EQ(result.sim.cpus, 32);
  for (const sim::JobOutcome& job : result.sim.jobs) {
    EXPECT_LE(job.size, 32);
  }
}

TEST(RunOneTest, BetaZeroMeansNoDilation) {
  RunSpec spec;
  spec.archive = wl::Archive::kLLNLThunder;
  spec.num_jobs = 300;
  spec.beta = 0.0;
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 3.0;
  dvfs.wq_threshold = std::nullopt;
  spec.dvfs = dvfs;
  const RunResult result = run_one(spec);
  for (const sim::JobOutcome& job : result.sim.jobs) {
    EXPECT_EQ(job.scaled_runtime, job.run_time_top);
  }
  // With beta = 0 reduction is free: everything runs at the lowest gear.
  EXPECT_EQ(result.sim.reduced_jobs,
            static_cast<std::int64_t>(result.sim.jobs.size()));
}

TEST(RunOneTest, InvalidScaleRejected) {
  RunSpec spec;
  spec.size_scale = 0.0;
  EXPECT_THROW((void)run_one(spec), Error);
}

TEST(NormalizedEnergyTest, Ratios) {
  sim::SimulationResult run;
  run.energy.computational_joules = 80.0;
  run.energy.total_joules = 90.0;
  sim::SimulationResult base;
  base.energy.computational_joules = 100.0;
  base.energy.total_joules = 100.0;
  const NormalizedEnergy norm = normalized_energy(run, base);
  EXPECT_DOUBLE_EQ(norm.computational, 0.8);
  EXPECT_DOUBLE_EQ(norm.total, 0.9);
}

TEST(NormalizedEnergyTest, DegenerateBaselineRejected) {
  sim::SimulationResult run;
  sim::SimulationResult base;  // zero energies
  EXPECT_THROW((void)normalized_energy(run, base), Error);
}

}  // namespace
}  // namespace bsld::report
