#include "report/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "util/error.hpp"
#include "workload/swf.hpp"

namespace bsld::report {
namespace {

TEST(RunSpecTest, LabelFormats) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kCTC);
  EXPECT_EQ(spec.label(), "CTC x1 EASY noDVFS");

  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 1.5;
  dvfs.wq_threshold = 16;
  spec.policy.dvfs = dvfs;
  spec.size_scale = 1.2;
  EXPECT_EQ(spec.label(), "CTC x1.2 EASY BSLD<=1.5,WQ<=16");

  spec.policy.dvfs->wq_threshold = std::nullopt;
  spec.policy.name = "fcfs";
  EXPECT_EQ(spec.label(), "CTC x1.2 FCFS BSLD<=1.5,WQ<=NO");

  // Derived, not hand-formatted: the dynamic-raise extension and non-archive
  // sources flow through the same components.
  spec.policy.name = "easy";
  core::DynamicRaiseConfig raise;
  raise.queue_limit = 16;
  spec.policy.raise = raise;
  EXPECT_EQ(spec.label(), "CTC x1.2 EASY+raise>16 BSLD<=1.5,WQ<=NO");
}

TEST(RunOneTest, DeterministicForEqualSpecs) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSC, 400);
  const RunResult a = run_one(spec);
  const RunResult b = run_one(spec);
  EXPECT_DOUBLE_EQ(a.sim().avg_bsld, b.sim().avg_bsld);
  EXPECT_DOUBLE_EQ(a.sim().energy.total_joules, b.sim().energy.total_joules);
}

TEST(RunOneTest, SizeScaleChangesMachine) {
  RunSpec spec;
  spec.workload =
      wl::WorkloadSource::from_archive(wl::Archive::kSDSC, 300);  // 128 CPUs
  spec.size_scale = 1.5;
  EXPECT_EQ(run_one(spec).sim().cpus, 192);
}

TEST(RunOneTest, ShrunkenMachineClampsJobSizes) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSC, 300);
  spec.size_scale = 0.25;  // 32 CPUs; the trace has larger jobs
  const RunResult result = run_one(spec);
  EXPECT_EQ(result.sim().cpus, 32);
  for (const sim::JobOutcome& job : result.sim().jobs) {
    EXPECT_LE(job.size, 32);
  }
}

TEST(RunOneTest, BetaZeroMeansNoDilation) {
  RunSpec spec;
  spec.workload =
      wl::WorkloadSource::from_archive(wl::Archive::kLLNLThunder, 300);
  spec.beta = 0.0;
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 3.0;
  dvfs.wq_threshold = std::nullopt;
  spec.policy.dvfs = dvfs;
  const RunResult result = run_one(spec);
  for (const sim::JobOutcome& job : result.sim().jobs) {
    EXPECT_EQ(job.scaled_runtime, job.run_time_top);
  }
  // With beta = 0 reduction is free: everything runs at the lowest gear.
  EXPECT_EQ(result.sim().reduced_jobs,
            static_cast<std::int64_t>(result.sim().jobs.size()));
}

TEST(RunOneTest, AcceptsAllThreeWorkloadSources) {
  // Archive.
  RunSpec archive;
  archive.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSC, 200);
  const RunResult from_archive = run_one(archive);
  EXPECT_EQ(from_archive.sim().jobs.size(), 200u);

  // SWF file: write the same trace to disk and replay it.
  const std::string path = ::testing::TempDir() + "experiment_test_sdsc.swf";
  wl::save_swf_file(path, wl::load_source(archive.workload));
  RunSpec swf;
  swf.workload = wl::WorkloadSource::from_swf(path);
  const RunResult from_swf = run_one(swf);
  std::remove(path.c_str());
  EXPECT_EQ(from_swf.sim().jobs.size(), from_archive.sim().jobs.size());
  EXPECT_DOUBLE_EQ(from_swf.sim().avg_bsld, from_archive.sim().avg_bsld);

  // Inline generator spec.
  wl::WorkloadSpec profile;
  profile.cpus = 32;
  profile.num_jobs = 100;
  RunSpec inline_spec;
  inline_spec.workload = wl::WorkloadSource::from_spec(profile, 5);
  const RunResult from_inline = run_one(inline_spec);
  EXPECT_EQ(from_inline.sim().jobs.size(), 100u);
  EXPECT_EQ(from_inline.sim().cpus, 32);
}

TEST(RunWorkloadTest, HandBuiltWorkloadSharesTheMachinery) {
  wl::Workload load;
  load.name = "tiny";
  load.cpus = 4;
  load.jobs = {{1, 0, 100, 120, 2, 0, -1.0}, {2, 0, 100, 120, 2, 0, -1.0}};
  const RunResult result = run_workload(load, RunSpec{});
  EXPECT_EQ(result.sim().cpus, 4);
  EXPECT_EQ(result.sim().jobs.size(), 2u);
  EXPECT_GT(result.sim().energy.total_joules, 0.0);
}

TEST(RunWorkloadTest, SizeScaleAppliesToHandBuiltWorkloads) {
  wl::Workload load;
  load.name = "tiny";
  load.cpus = 8;
  load.jobs = {{1, 0, 100, 120, 8, 0, -1.0}};
  RunSpec spec;
  spec.size_scale = 0.5;  // 4 CPUs; the job must be clamped
  const RunResult result = run_workload(load, spec);
  EXPECT_EQ(result.sim().cpus, 4);
  EXPECT_EQ(result.sim().jobs[0].size, 4);
}

TEST(RunOneTest, InvalidScaleRejected) {
  RunSpec spec;
  spec.size_scale = 0.0;
  EXPECT_THROW((void)run_one(spec), Error);
}

TEST(NormalizedEnergyTest, Ratios) {
  sim::SimulationResult run;
  run.energy.computational_joules = 80.0;
  run.energy.total_joules = 90.0;
  sim::SimulationResult base;
  base.energy.computational_joules = 100.0;
  base.energy.total_joules = 100.0;
  const NormalizedEnergy norm = normalized_energy(run, base);
  EXPECT_DOUBLE_EQ(norm.computational, 0.8);
  EXPECT_DOUBLE_EQ(norm.total, 0.9);
}

TEST(NormalizedEnergyTest, DegenerateBaselineRejected) {
  sim::SimulationResult run;
  sim::SimulationResult base;  // zero energies
  EXPECT_THROW((void)normalized_energy(run, base), Error);
}

}  // namespace
}  // namespace bsld::report
