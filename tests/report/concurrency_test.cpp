/// \file concurrency_test.cpp
/// \brief Regression tests for the locking contracts that the thread-safety
/// annotations (src/util/thread_annotations.hpp) document statically.
///
/// Each test hammers one shared structure from several threads at once.
/// They pass trivially in a plain build; their value is under
/// ThreadSanitizer (cmake -DBSLD_TSAN=ON, CI job `tsan`), where any
/// unlocked read of a BSLD_GUARDED_BY member becomes a hard failure here
/// instead of a latent daemon bug.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_registry.hpp"
#include "report/result_cache.hpp"
#include "report/sweep.hpp"
#include "sim/instrument_registry.hpp"

namespace bsld::report {
namespace {

namespace fs = std::filesystem;

RunSpec small_spec(double bsld_threshold) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kCTC, 150);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = bsld_threshold;
  dvfs.wq_threshold = 4;
  spec.policy.dvfs = dvfs;
  return spec;
}

std::vector<RunSpec> small_grid() {
  std::vector<RunSpec> specs;
  for (const double threshold : {1.5, 2.0, 2.5, 3.0}) {
    specs.push_back(small_spec(threshold));
  }
  return specs;
}

class ScopedTempDir {
 public:
  ScopedTempDir() {
    dir_ = fs::temp_directory_path() /
           ("bsld-conc-test-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  ~ScopedTempDir() { fs::remove_all(dir_); }

  const fs::path& path() const { return dir_; }

 private:
  fs::path dir_;
};

// progress() may be polled from any thread while run() executes on
// another; both touch progress_ under progress_mutex_. A torn or stale
// read here was only visible as a garbled progress line in the CLI.
TEST(ConcurrencyTest, ProgressPollingDuringRunIsRaceFree) {
  SweepRunner::Options options;
  options.threads = 3;
  SweepRunner runner(options);

  std::atomic<bool> done{false};
  std::atomic<bool> monotonic{true};
  std::thread poller([&] {
    std::size_t last = 0;
    while (!done.load()) {
      const SweepRunner::Progress progress = runner.progress();
      if (progress.completed < last) monotonic = false;
      last = progress.completed;
    }
  });

  const std::vector<RunSpec> specs = small_grid();
  const auto results = runner.run(specs);
  done = true;
  poller.join();

  EXPECT_TRUE(monotonic.load());
  EXPECT_EQ(results.size(), specs.size());
  EXPECT_EQ(runner.progress().completed, specs.size());
}

// Several threads submit() into one persistent pool. Batches share
// pool_mutex_, the in-flight dedup map, and (spec-identical slots across
// batches) the same PendingRun. Exactly the daemon's concurrency shape.
TEST(ConcurrencyTest, ConcurrentSubmittersShareOnePool) {
  SweepRunner::Options options;
  options.threads = 3;
  SweepRunner runner(options);

  constexpr int kSubmitters = 4;
  std::atomic<std::size_t> delivered{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      // Identical grids across submitters: every slot beyond the first
      // batch coalesces onto an in-flight or completed simulation.
      const std::vector<RunSpec> specs = small_grid();
      auto handle = runner.submit(
          specs, [&](std::size_t, const RunResult&) { delivered += 1; });
      const auto results = handle.wait();
      EXPECT_EQ(results.size(), specs.size());
      for (const RunResult& result : results) {
        EXPECT_GT(result.sim().avg_bsld, 0.0);
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  EXPECT_EQ(delivered.load(), kSubmitters * small_grid().size());
}

// lookup()/store()/counters() from concurrent threads over one cache:
// counters_ is guarded by mutex_; the disk entries serialize on FileLock.
TEST(ConcurrencyTest, CacheCountersUnderConcurrentLookups) {
  const ScopedTempDir dir;
  ResultCache cache(dir.path());

  const RunSpec spec = small_spec(2.0);
  RunResult seed;
  seed.spec = spec;
  const auto direct = run_all({spec}, 1);
  ASSERT_EQ(direct.size(), 1u);
  cache.store(direct[0]);

  constexpr int kThreads = 4;
  constexpr int kLookups = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kLookups; ++i) {
        const auto hit = cache.lookup(spec);
        EXPECT_TRUE(hit.has_value());
        (void)cache.counters();  // interleaved reads of the counter block.
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const ResultCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, static_cast<std::size_t>(kThreads * kLookups));
  EXPECT_EQ(counters.stores, 1u);
}

// The registry singletons are read from every worker thread (policy
// construction per simulation) while remaining open for registration;
// both sides go through the annotated SharedMutex.
TEST(ConcurrencyTest, RegistryLookupsAreRaceFree) {
  constexpr int kThreads = 4;
  constexpr int kQueries = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueries; ++i) {
        EXPECT_TRUE(core::PolicyRegistry::global().has_policy("easy"));
        EXPECT_FALSE(core::PolicyRegistry::global().policy_names().empty());
        EXPECT_FALSE(sim::InstrumentRegistry::global().names().empty());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
}

}  // namespace
}  // namespace bsld::report
