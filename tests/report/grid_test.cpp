#include "report/grid.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/error.hpp"

namespace bsld::report {
namespace {

TEST(GridTest, NoAxesYieldsTheBaseSpec) {
  util::Config config;
  config.set("workload.archive", "SDSC");
  config.set("workload.jobs", "300");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].workload.archive, wl::Archive::kSDSC);
  EXPECT_EQ(specs[0].workload.jobs, 300);
  EXPECT_FALSE(specs[0].policy.dvfs.has_value());  // base default: no DVFS.
}

TEST(GridTest, CrossProductInDocumentedOrder) {
  util::Config config;
  config.set("workload.jobs", "100");
  config.set("sweep.workloads", "CTC, SDSC");
  config.set("sweep.bsld_thresholds", "1.5, 2");
  config.set("sweep.wq_thresholds", "4, NO");
  config.set("sweep.scales", "1, 1.2");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 16u);  // 2 x 2 x 2 x 2.

  // Workloads outermost: first half CTC, second half SDSC.
  EXPECT_EQ(specs[0].workload.archive, wl::Archive::kCTC);
  EXPECT_EQ(specs[8].workload.archive, wl::Archive::kSDSC);
  // The axis propagates the base trace length.
  EXPECT_EQ(specs[0].workload.jobs, 100);
  // Then BSLD, then WQ, then scale (innermost).
  ASSERT_TRUE(specs[0].policy.dvfs.has_value());
  EXPECT_DOUBLE_EQ(specs[0].policy.dvfs->bsld_threshold, 1.5);
  EXPECT_EQ(specs[0].policy.dvfs->wq_threshold, 4);
  EXPECT_DOUBLE_EQ(specs[0].size_scale, 1.0);
  EXPECT_DOUBLE_EQ(specs[1].size_scale, 1.2);
  EXPECT_FALSE(specs[2].policy.dvfs->wq_threshold.has_value());  // NO.
  EXPECT_DOUBLE_EQ(specs[4].policy.dvfs->bsld_threshold, 2.0);

  // Every expanded spec is distinct: the grid is dedup/shard-friendly.
  std::set<std::string> keys;
  for (const RunSpec& spec : specs) keys.insert(spec.key());
  EXPECT_EQ(keys.size(), specs.size());
}

TEST(GridTest, ThresholdAxesRefineTheBaseDvfsConfig) {
  util::Config config;
  config.set("policy.dvfs", "true");
  config.set("policy.bsld_floor", "30");
  config.set("sweep.bsld_thresholds", "3");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 1u);
  ASSERT_TRUE(specs[0].policy.dvfs.has_value());
  EXPECT_DOUBLE_EQ(specs[0].policy.dvfs->bsld_threshold, 3.0);
  EXPECT_EQ(specs[0].policy.dvfs->bsld_floor, 30);  // base refinement kept.
}

TEST(GridTest, WithoutThresholdAxesTheBaselinePolicySurvives) {
  util::Config config;
  config.set("sweep.scales", "1, 1.5, 2");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 3u);
  for (const RunSpec& spec : specs) {
    EXPECT_FALSE(spec.policy.dvfs.has_value());  // still a no-DVFS baseline.
  }
  EXPECT_DOUBLE_EQ(specs[2].size_scale, 2.0);
}

TEST(GridTest, BadWqTokenThrows) {
  util::Config config;
  config.set("sweep.wq_thresholds", "4, sometimes");
  EXPECT_THROW((void)expand_grid(config), Error);

  util::Config negative;
  negative.set("sweep.wq_thresholds", "-3");
  EXPECT_THROW((void)expand_grid(negative), Error);
}

TEST(GridTest, PmAxesExpandInnermostWithTheWattsOnTheRightKnob) {
  util::Config config;
  config.set("workload.jobs", "100");
  config.set("sweep.workloads", "CTC, SDSC");
  config.set("sweep.pm", "cap-uniform, setpoint");
  config.set("sweep.pm_cap_watts", "4000, 8000");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 8u);  // 2 workloads x 2 managers x 2 budgets.

  // Workloads outermost, pm names next, watts innermost.
  EXPECT_EQ(specs[0].workload.archive, wl::Archive::kCTC);
  EXPECT_EQ(specs[4].workload.archive, wl::Archive::kSDSC);
  EXPECT_EQ(specs[0].pm.name, "cap-uniform");
  EXPECT_EQ(specs[2].pm.name, "setpoint");
  // The cap families take the watts as their hard cap...
  EXPECT_EQ(specs[0].pm.cap_watts, 4000.0);
  EXPECT_EQ(specs[1].pm.cap_watts, 8000.0);
  EXPECT_FALSE(specs[0].pm.setpoint_watts.has_value());
  // ...while "setpoint" takes them as the control target.
  EXPECT_EQ(specs[2].pm.setpoint_watts, 4000.0);
  EXPECT_EQ(specs[3].pm.setpoint_watts, 8000.0);
  EXPECT_FALSE(specs[2].pm.cap_watts.has_value());
}

TEST(GridTest, PmWattsAxisIsIgnoredForParameterlessManagers) {
  util::Config config;
  config.set("sweep.pm", "none, sleep");
  config.set("sweep.pm_cap_watts", "4000, 8000");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 4u);
  for (const RunSpec& spec : specs) {
    EXPECT_FALSE(spec.pm.cap_watts.has_value());
    EXPECT_FALSE(spec.pm.setpoint_watts.has_value());
  }
  // The watts collapse to duplicate specs, which a sweep deduplicates by
  // key: only two distinct runs remain.
  EXPECT_EQ(specs[0].key(), specs[1].key());
  EXPECT_EQ(specs[2].key(), specs[3].key());
  EXPECT_NE(specs[0].key(), specs[2].key());
}

TEST(GridTest, PmAxisValidatesEverySpecAtExpansion) {
  util::Config unknown;
  unknown.set("sweep.pm", "cap-uniform, warp-drive");
  unknown.set("sweep.pm_cap_watts", "4000");
  EXPECT_THROW((void)expand_grid(unknown), Error);

  // A capping family swept without any watts fails the family rule up
  // front instead of mid-sweep.
  util::Config capless;
  capless.set("sweep.pm", "cap-uniform");
  EXPECT_THROW((void)expand_grid(capless), Error);
}

TEST(GridTest, UnknownWorkloadNameSurfacesAsError) {
  util::Config config;
  config.set("sweep.workloads", "CTC, /no/such/trace.swf");
  // resolve_source treats unknown names as SWF paths; expansion succeeds
  // and the error surfaces at load time, same as a single mistyped run.
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[1].workload.kind, wl::WorkloadSource::Kind::kSwf);
  EXPECT_THROW((void)run_one(specs[1]), Error);
}

}  // namespace
}  // namespace bsld::report
