#include "report/grid.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/error.hpp"

namespace bsld::report {
namespace {

TEST(GridTest, NoAxesYieldsTheBaseSpec) {
  util::Config config;
  config.set("workload.archive", "SDSC");
  config.set("workload.jobs", "300");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0].workload.archive, wl::Archive::kSDSC);
  EXPECT_EQ(specs[0].workload.jobs, 300);
  EXPECT_FALSE(specs[0].policy.dvfs.has_value());  // base default: no DVFS.
}

TEST(GridTest, CrossProductInDocumentedOrder) {
  util::Config config;
  config.set("workload.jobs", "100");
  config.set("sweep.workloads", "CTC, SDSC");
  config.set("sweep.bsld_thresholds", "1.5, 2");
  config.set("sweep.wq_thresholds", "4, NO");
  config.set("sweep.scales", "1, 1.2");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 16u);  // 2 x 2 x 2 x 2.

  // Workloads outermost: first half CTC, second half SDSC.
  EXPECT_EQ(specs[0].workload.archive, wl::Archive::kCTC);
  EXPECT_EQ(specs[8].workload.archive, wl::Archive::kSDSC);
  // The axis propagates the base trace length.
  EXPECT_EQ(specs[0].workload.jobs, 100);
  // Then BSLD, then WQ, then scale (innermost).
  ASSERT_TRUE(specs[0].policy.dvfs.has_value());
  EXPECT_DOUBLE_EQ(specs[0].policy.dvfs->bsld_threshold, 1.5);
  EXPECT_EQ(specs[0].policy.dvfs->wq_threshold, 4);
  EXPECT_DOUBLE_EQ(specs[0].size_scale, 1.0);
  EXPECT_DOUBLE_EQ(specs[1].size_scale, 1.2);
  EXPECT_FALSE(specs[2].policy.dvfs->wq_threshold.has_value());  // NO.
  EXPECT_DOUBLE_EQ(specs[4].policy.dvfs->bsld_threshold, 2.0);

  // Every expanded spec is distinct: the grid is dedup/shard-friendly.
  std::set<std::string> keys;
  for (const RunSpec& spec : specs) keys.insert(spec.key());
  EXPECT_EQ(keys.size(), specs.size());
}

TEST(GridTest, ThresholdAxesRefineTheBaseDvfsConfig) {
  util::Config config;
  config.set("policy.dvfs", "true");
  config.set("policy.bsld_floor", "30");
  config.set("sweep.bsld_thresholds", "3");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 1u);
  ASSERT_TRUE(specs[0].policy.dvfs.has_value());
  EXPECT_DOUBLE_EQ(specs[0].policy.dvfs->bsld_threshold, 3.0);
  EXPECT_EQ(specs[0].policy.dvfs->bsld_floor, 30);  // base refinement kept.
}

TEST(GridTest, WithoutThresholdAxesTheBaselinePolicySurvives) {
  util::Config config;
  config.set("sweep.scales", "1, 1.5, 2");
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 3u);
  for (const RunSpec& spec : specs) {
    EXPECT_FALSE(spec.policy.dvfs.has_value());  // still a no-DVFS baseline.
  }
  EXPECT_DOUBLE_EQ(specs[2].size_scale, 2.0);
}

TEST(GridTest, BadWqTokenThrows) {
  util::Config config;
  config.set("sweep.wq_thresholds", "4, sometimes");
  EXPECT_THROW((void)expand_grid(config), Error);

  util::Config negative;
  negative.set("sweep.wq_thresholds", "-3");
  EXPECT_THROW((void)expand_grid(negative), Error);
}

TEST(GridTest, UnknownWorkloadNameSurfacesAsError) {
  util::Config config;
  config.set("sweep.workloads", "CTC, /no/such/trace.swf");
  // resolve_source treats unknown names as SWF paths; expansion succeeds
  // and the error surfaces at load time, same as a single mistyped run.
  const std::vector<RunSpec> specs = expand_grid(config);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[1].workload.kind, wl::WorkloadSource::Kind::kSwf);
  EXPECT_THROW((void)run_one(specs[1]), Error);
}

}  // namespace
}  // namespace bsld::report
