// Distribution sanity for report::shard_of — the hash that splits a sweep
// across processes (scripts/sweep_shards, `bsldsim sweep --shard`). A
// pathological spec→shard mapping would silently serialize a "parallel"
// sweep onto one worker, so this pins down, over a 10k-spec grid:
//   * every shard is hit for every shard_count a user would plausibly pick;
//   * no shard hoards the keys (loose balance bound, deterministic);
//   * the mapping is a pure function of the spec (stable across calls and
//     across value copies);
//   * the shard_count == 1 and highest-shard-index edges behave.
#include <gtest/gtest.h>

#include <vector>

#include "report/experiment.hpp"
#include "report/sweep.hpp"
#include "util/error.hpp"

namespace bsld::report {
namespace {

/// 10,000 distinct specs spanning the axes a real sweep varies: workload
/// seed, beta, and machine size scale (1000 x 2 x 5). Specs differing in
/// any of these serialize to different keys, so every grid point is a
/// distinct hash input.
std::vector<RunSpec> grid_10k() {
  std::vector<RunSpec> specs;
  specs.reserve(10000);
  for (std::uint64_t seed = 1; seed <= 1000; ++seed) {
    for (const double beta : {0.3, 0.5}) {
      for (const double scale : {1.0, 1.1, 1.2, 1.25, 1.5}) {
        RunSpec spec;
        spec.workload =
            wl::WorkloadSource::from_archive(wl::Archive::kCTC, 250, seed);
        spec.beta = beta;
        spec.size_scale = scale;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

TEST(ShardDistributionTest, EveryShardIsHitUpToEightWays) {
  const std::vector<RunSpec> specs = grid_10k();
  ASSERT_EQ(specs.size(), 10000u);
  for (unsigned shard_count = 1; shard_count <= 8; ++shard_count) {
    std::vector<std::size_t> hits(shard_count, 0);
    for (const RunSpec& spec : specs) {
      const unsigned shard = shard_of(spec, shard_count);
      ASSERT_LT(shard, shard_count);
      ++hits[shard];
    }
    for (unsigned shard = 0; shard < shard_count; ++shard) {
      // Empty shard = a worker with nothing to do; under a uniform hash
      // each shard expects >= 1250 of 10000 keys at the widest split.
      EXPECT_GT(hits[shard], 0u)
          << "shard " << shard << " of " << shard_count << " got no specs";
      // Loose balance bound (deterministic, not statistical): no shard may
      // fall below 5% of the keys — under 40% of its uniform share.
      EXPECT_GE(hits[shard], specs.size() / 20)
          << "shard " << shard << " of " << shard_count << " is starved";
    }
  }
}

TEST(ShardDistributionTest, MappingIsStableAcrossCallsAndCopies) {
  const std::vector<RunSpec> specs = grid_10k();
  std::vector<unsigned> first;
  first.reserve(specs.size());
  for (const RunSpec& spec : specs) first.push_back(shard_of(spec, 5));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(shard_of(specs[i], 5), first[i]);
    const RunSpec copy = specs[i];  // value identity, not object identity.
    EXPECT_EQ(shard_of(copy, 5), first[i]);
  }
}

TEST(ShardDistributionTest, SingleShardTakesEverything) {
  for (const RunSpec& spec : grid_10k()) {
    EXPECT_EQ(shard_of(spec, 1), 0u);
  }
}

TEST(ShardDistributionTest, HighestShardIndexIsReachable) {
  // The shard_index == shard_count - 1 edge: sharded sweeps launch workers
  // 0..N-1, and the last one must see work. Follows from the no-empty-shard
  // invariant, pinned separately so the edge has a named test.
  const std::vector<RunSpec> specs = grid_10k();
  for (const unsigned shard_count : {2u, 8u}) {
    bool last_hit = false;
    for (const RunSpec& spec : specs) {
      if (shard_of(spec, shard_count) == shard_count - 1) {
        last_hit = true;
        break;
      }
    }
    EXPECT_TRUE(last_hit) << "no spec maps to shard " << shard_count - 1
                          << " of " << shard_count;
  }
}

TEST(ShardDistributionTest, ZeroShardsThrows) {
  RunSpec spec;
  EXPECT_THROW((void)shard_of(spec, 0), Error);
}

}  // namespace
}  // namespace bsld::report
