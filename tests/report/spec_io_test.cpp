/// \file spec_io_test.cpp
/// \brief RunSpec serialization: parse/format round-trips must be
/// byte-identical, parsed specs must equal their source specs, and a spec
/// replayed from its serialized form must reproduce the original results
/// bit-for-bit — the property that makes run configs savable, diffable and
/// replayable.
#include <gtest/gtest.h>

#include "report/experiment.hpp"
#include "util/error.hpp"

namespace bsld::report {
namespace {

std::vector<RunSpec> representative_specs() {
  std::vector<RunSpec> specs;

  specs.emplace_back();  // all defaults

  {
    RunSpec spec;
    spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSC, 300, 9);
    spec.size_scale = 1.5;
    core::DvfsConfig dvfs;
    dvfs.bsld_threshold = 1.5;
    dvfs.wq_threshold = 16;
    spec.policy.dvfs = dvfs;
    specs.push_back(spec);
  }
  {
    RunSpec spec;
    spec.policy.name = "conservative";
    spec.policy.selector = "LastFit";
    core::DvfsConfig dvfs;
    dvfs.wq_threshold = std::nullopt;
    dvfs.backfill_requires_bsld_at_top = false;
    spec.policy.dvfs = dvfs;
    spec.beta = 0.3;
    spec.power.top_active_power_watts = 120.0;
    specs.push_back(spec);
  }
  {
    RunSpec spec;  // dynamic raise + per-job beta + custom gears
    core::DvfsConfig dvfs;
    spec.policy.dvfs = dvfs;
    core::DynamicRaiseConfig raise;
    raise.queue_limit = 8;
    spec.policy.raise = raise;
    spec.per_job_beta = {{0.25, 0.75}};
    spec.gears = cluster::GearSet({{1.0, 1.0}, {2.0, 1.25}, {3.0, 1.5}});
    specs.push_back(spec);
  }
  {
    RunSpec spec;
    spec.workload = wl::WorkloadSource::from_swf("traces/real.swf", 2000, 512);
    spec.policy.name = "fcfs";
    specs.push_back(spec);
  }
  {
    RunSpec spec;  // instrumented streaming run
    spec.instruments = {"wait-trace", "utilization", "energy"};
    spec.retain_jobs = false;
    specs.push_back(spec);
  }
  {
    RunSpec spec;  // power-capped run
    spec.pm.name = "cap-proportional";
    spec.pm.cap_watts = 4000.0;
    specs.push_back(spec);
  }
  {
    RunSpec spec;  // closed-loop power control, every tunable set
    spec.pm.name = "setpoint";
    spec.pm.setpoint_watts = 350000.0;
    spec.pm.cap_watts = 400000.0;
    spec.pm.interval_s = 120;
    spec.pm.gain = 0.25;
    specs.push_back(spec);
  }
  {
    wl::WorkloadSpec workload;
    workload.name = "inline";
    workload.cpus = 48;
    workload.num_jobs = 200;
    workload.runtime.classes = {{0.5, 4.0, 0.5}, {0.5, 7.5, 1.5}};
    RunSpec spec;
    spec.workload = wl::WorkloadSource::from_spec(workload, 3);
    specs.push_back(spec);
  }
  {
    RunSpec spec;  // streaming run with sampled traces, every new key set
    spec.stream = true;
    spec.retain_jobs = false;
    spec.instruments = {"wait-trace", "utilization"};
    spec.sample.cap = 4096;
    spec.sample.mode = util::SamplePlan::Mode::kReservoir;
    spec.sample.seed = 12345;
    specs.push_back(spec);
  }
  {
    RunSpec spec;  // trace length beyond the int32 boundary
    spec.workload =
        wl::WorkloadSource::from_archive(wl::Archive::kCTC,
                                         std::int64_t{3'000'000'000});
    spec.stream = true;
    specs.push_back(spec);
  }
  return specs;
}

TEST(SpecIoTest, JobCountSurvivesTheInt32Boundary) {
  // WorkloadSource::jobs is int64 end to end: a trace length one past
  // INT32_MAX must round-trip through the config text unclamped.
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(
      wl::Archive::kSDSC, std::int64_t{2147483648});  // 2^31
  const RunSpec parsed =
      RunSpec::parse(util::Config::parse(spec.to_config().to_string()));
  EXPECT_EQ(parsed.workload.jobs, std::int64_t{2147483648});
  EXPECT_EQ(parsed, spec);
}

TEST(SpecIoTest, ParseFormatRoundTripIsByteIdentical) {
  for (const RunSpec& spec : representative_specs()) {
    const std::string text = spec.to_config().to_string();
    const RunSpec parsed = RunSpec::parse(util::Config::parse(text));
    EXPECT_EQ(parsed, spec) << text;
    EXPECT_EQ(parsed.to_config().to_string(), text);
    EXPECT_EQ(parsed.key(), spec.key());
    EXPECT_EQ(parsed.label(), spec.label());
  }
}

TEST(SpecIoTest, PartialConfigKeepsDefaults) {
  const RunSpec parsed = RunSpec::parse(util::Config::parse(
      "workload.archive = SDSCBlue\npolicy.name = fcfs\n"));
  RunSpec expected;
  expected.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSCBlue);
  expected.policy.name = "fcfs";
  EXPECT_EQ(parsed, expected);
}

TEST(SpecIoTest, ReplayedSpecReproducesResults) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kSDSC, 250);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = 4;
  spec.policy.dvfs = dvfs;

  const RunSpec replayed =
      RunSpec::parse(util::Config::parse(spec.to_config().to_string()));
  const RunResult original = run_one(spec);
  const RunResult replay = run_one(replayed);
  EXPECT_DOUBLE_EQ(original.sim().avg_bsld, replay.sim().avg_bsld);
  EXPECT_DOUBLE_EQ(original.sim().energy.total_joules,
                   replay.sim().energy.total_joules);
  EXPECT_EQ(original.sim().makespan, replay.sim().makespan);
  EXPECT_EQ(original.sim().reduced_jobs, replay.sim().reduced_jobs);
}

TEST(SpecIoTest, PmKeysParseAndLabelTheRun) {
  const RunSpec parsed = RunSpec::parse(util::Config::parse(
      "pm = cap-uniform\npm.cap_watts = 4000\n"));
  ASSERT_TRUE(parsed.pm.enabled());
  EXPECT_EQ(parsed.pm.name, "cap-uniform");
  EXPECT_EQ(parsed.pm.cap_watts, 4000.0);
  EXPECT_NE(parsed.label().find("PM:cap-uniform@4000W"), std::string::npos)
      << parsed.label();
  // The default spec's label carries no PM segment.
  EXPECT_EQ(RunSpec{}.label().find("PM:"), std::string::npos);
}

TEST(SpecIoTest, UnknownPmManagerRejected) {
  EXPECT_THROW(RunSpec::parse(util::Config::parse("pm = warp-drive\n")),
               Error);
}

TEST(SpecIoTest, PmFamilyRulesEnforcedAtParseTime) {
  // A capping manager without its cap fails when the spec is read, not
  // mid-sweep when the manager is built.
  EXPECT_THROW(RunSpec::parse(util::Config::parse("pm = cap-uniform\n")),
               Error);
  EXPECT_THROW(
      RunSpec::parse(util::Config::parse("pm = sleep\npm.gain = 0.5\n")),
      Error);
}

TEST(SpecIoTest, EqualSpecsShareTheKey) {
  RunSpec a;
  RunSpec b;
  EXPECT_EQ(a.key(), b.key());
  // key() is memoized, so a spec is frozen once keyed; tweak a copy
  // instead (copy construction/assignment resets the copy's cache).
  RunSpec c = a;
  c.size_scale = 1.2;
  EXPECT_NE(a.key(), c.key());
  RunSpec d;
  d = c;
  d.size_scale = 1.4;
  EXPECT_NE(c.key(), d.key());
}

TEST(SpecIoTest, MalformedPerJobBetaRejected) {
  EXPECT_THROW((void)RunSpec::parse(
                   util::Config::parse("beta.per_job = 0.5\n")),
               Error);
}

TEST(SpecIoTest, UnknownPolicyRejected) {
  EXPECT_THROW((void)RunSpec::parse(
                   util::Config::parse("policy.name = round-robin\n")),
               Error);
}

TEST(SpecIoTest, UnknownWorkloadKindRejected) {
  EXPECT_THROW((void)RunSpec::parse(
                   util::Config::parse("workload.source = database\n")),
               Error);
}

TEST(SpecIoTest, UnknownInstrumentRejectedListingRegistry) {
  try {
    (void)RunSpec::parse(util::Config::parse("instruments = wait-trase\n"));
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    // Typos fail discoverably: the message names the registered set.
    EXPECT_NE(std::string(error.what()).find("wait-trace"), std::string::npos)
        << error.what();
  }
}

TEST(SpecIoTest, DefaultInstrumentFieldsKeepLegacySerialization) {
  // Specs without instruments/retain_jobs must serialize exactly as before
  // the measurement fields existed — saved spec files stay byte-stable.
  const RunSpec spec;
  const std::string text = spec.to_config().to_string();
  EXPECT_EQ(text.find("instruments"), std::string::npos);
  EXPECT_EQ(text.find("retain_jobs"), std::string::npos);
}

}  // namespace
}  // namespace bsld::report
