#include "report/result_cache.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>
#include <vector>

#include "report/sinks.hpp"
#include "report/sweep.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace bsld::report {
namespace {

namespace fs = std::filesystem;

RunSpec small_spec(double bsld_threshold = 2.0) {
  RunSpec spec;
  spec.workload = wl::WorkloadSource::from_archive(wl::Archive::kCTC, 150);
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = bsld_threshold;
  dvfs.wq_threshold = 4;
  spec.policy.dvfs = dvfs;
  return spec;
}

void expect_same_sim(const sim::SimulationResult& a,
                     const sim::SimulationResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_EQ(a.cpus, b.cpus);
  EXPECT_EQ(a.job_count, b.job_count);
  EXPECT_EQ(a.avg_bsld, b.avg_bsld);  // bitwise: entries round-trip doubles.
  EXPECT_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.reduced_jobs, b.reduced_jobs);
  EXPECT_EQ(a.boosted_jobs, b.boosted_jobs);
  EXPECT_EQ(a.jobs_per_gear, b.jobs_per_gear);
  EXPECT_EQ(a.energy.computational_joules, b.energy.computational_joules);
  EXPECT_EQ(a.energy.total_joules, b.energy.total_joules);
  EXPECT_EQ(a.energy.idle_joules, b.energy.idle_joules);
  EXPECT_EQ(a.energy.busy_core_seconds, b.energy.busy_core_seconds);
  EXPECT_EQ(a.energy.idle_core_seconds, b.energy.idle_core_seconds);
  EXPECT_EQ(a.energy.sleep_core_seconds, b.energy.sleep_core_seconds);
  EXPECT_EQ(a.energy.sleep_joules, b.energy.sleep_joules);
  EXPECT_EQ(a.energy.horizon, b.energy.horizon);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.events_processed, b.events_processed);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].id, b.jobs[i].id);
    EXPECT_EQ(a.jobs[i].start, b.jobs[i].start);
    EXPECT_EQ(a.jobs[i].end, b.jobs[i].end);
    EXPECT_EQ(a.jobs[i].gear, b.jobs[i].gear);
    EXPECT_EQ(a.jobs[i].final_gear, b.jobs[i].final_gear);
    EXPECT_EQ(a.jobs[i].boosted, b.jobs[i].boosted);
    EXPECT_EQ(a.jobs[i].bsld, b.jobs[i].bsld);
  }
}

std::string rendered_csv(const sim::Instrument& instrument) {
  std::ostringstream out;
  instrument.write_csv(out);
  return out.str();
}

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("bsld-cache-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  fs::path root_;
};

TEST_F(ResultCacheTest, LookupOnEmptyCacheMisses) {
  ResultCache cache(root_);
  EXPECT_FALSE(cache.lookup(small_spec()).has_value());
  EXPECT_EQ(cache.counters().misses, 1u);
  EXPECT_EQ(cache.counters().hits, 0u);
}

TEST_F(ResultCacheTest, StoreLookupRoundTripsEverything) {
  RunSpec spec = small_spec();
  spec.instruments = {"wait-trace", "utilization"};
  const RunResult fresh = run_one(spec);

  ResultCache cache(root_);
  cache.store(fresh);
  const auto cached = cache.lookup(spec);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(cached->spec, spec);
  expect_same_sim(fresh.sim(), cached->sim());

  // Instruments replay byte-identically (name, rows, rendered CSV)...
  ASSERT_EQ(cached->instruments.size(), fresh.instruments.size());
  for (std::size_t i = 0; i < fresh.instruments.size(); ++i) {
    EXPECT_EQ(cached->instruments[i]->name(), fresh.instruments[i]->name());
    EXPECT_EQ(cached->instruments[i]->rows(), fresh.instruments[i]->rows());
    EXPECT_EQ(rendered_csv(*cached->instruments[i]),
              rendered_csv(*fresh.instruments[i]));
  }
  // ...through the name lookup too, while typed access says "replayed".
  EXPECT_NE(cached->instrument("wait-trace"), nullptr);
  EXPECT_EQ(instrument_as<sim::WaitQueueTrace>(*cached, "wait-trace"),
            nullptr);
  EXPECT_NE(dynamic_cast<const CachedInstrument*>(
                cached->instrument("wait-trace")),
            nullptr);

  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().stores, 1u);
}

TEST_F(ResultCacheTest, RetainJobsOffRoundTripsWithoutJobs) {
  RunSpec spec = small_spec();
  spec.retain_jobs = false;
  const RunResult fresh = run_one(spec);
  ASSERT_TRUE(fresh.sim().jobs.empty());

  ResultCache cache(root_);
  cache.store(fresh);
  const auto cached = cache.lookup(spec);
  ASSERT_TRUE(cached.has_value());
  EXPECT_TRUE(cached->sim().jobs.empty());
  expect_same_sim(fresh.sim(), cached->sim());

  // The retained variant is a different run identity: no false sharing.
  RunSpec retained = small_spec();
  EXPECT_FALSE(cache.lookup(retained).has_value());
}

TEST_F(ResultCacheTest, PowerManagedRunsRoundTripWithTheirSleepEnergy) {
  // A sleep-managed run populates the sleep energy fields; the cache
  // entry must replay them bit-for-bit (expect_same_sim covers them), and
  // the managed spec's key must differ from the unmanaged one's.
  RunSpec spec = small_spec();
  spec.pm.name = "sleep";
  const RunResult fresh = run_one(spec);
  EXPECT_GT(fresh.sim().energy.sleep_core_seconds, 0.0);

  ResultCache cache(root_);
  cache.store(fresh);
  const auto cached = cache.lookup(spec);
  ASSERT_TRUE(cached.has_value());
  expect_same_sim(fresh.sim(), cached->sim());
  EXPECT_NE(spec.key(), small_spec().key());
  EXPECT_FALSE(cache.lookup(small_spec()).has_value());
}

TEST_F(ResultCacheTest, TruncatedEntryIsCorruptMissAndRecovers) {
  const RunSpec spec = small_spec();
  ResultCache cache(root_);
  cache.store(run_one(spec));

  const fs::path path = cache.entry_path(spec);
  const std::string bytes = util::read_file_bytes(path).value();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.counters().corrupt, 1u);
  EXPECT_FALSE(fs::exists(path));  // dropped: the slot is clean again.

  // Recompute-and-rewrite restores service.
  cache.store(run_one(spec));
  EXPECT_TRUE(cache.lookup(spec).has_value());
}

TEST_F(ResultCacheTest, GarbageEntryIsCorruptMiss) {
  const RunSpec spec = small_spec();
  ResultCache cache(root_);
  cache.store(run_one(spec));
  util::atomic_write_file(cache.entry_path(spec), "not a cache entry\n");
  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.counters().corrupt, 1u);
}

TEST_F(ResultCacheTest, WrongEpochEntryIsMiss) {
  const RunSpec spec = small_spec();
  ResultCache cache(root_);
  cache.store(run_one(spec));

  const fs::path path = cache.entry_path(spec);
  std::string bytes = util::read_file_bytes(path).value();
  const std::string current = "bsldsim-cache epoch=" +
                              std::to_string(ResultCache::kSchemaEpoch);
  ASSERT_EQ(bytes.rfind(current, 0), 0u);
  bytes.replace(0, current.size(), "bsldsim-cache epoch=999");
  util::atomic_write_file(path, bytes);

  EXPECT_FALSE(cache.lookup(spec).has_value());
  EXPECT_EQ(cache.counters().corrupt, 1u);
}

TEST_F(ResultCacheTest, ForeignSpecKeyInEntryIsPlainMiss) {
  // A structurally valid entry whose embedded key belongs to another spec
  // models a 64-bit hash collision: it must read as a miss (recompute),
  // not as corruption, and must not be deleted.
  const RunSpec spec_a = small_spec(2.0);
  const RunSpec spec_b = small_spec(3.0);
  ResultCache cache(root_);
  cache.store(run_one(spec_a));

  const std::string bytes =
      util::read_file_bytes(cache.entry_path(spec_a)).value();
  util::atomic_write_file(cache.entry_path(spec_b), bytes);

  EXPECT_FALSE(cache.lookup(spec_b).has_value());
  EXPECT_EQ(cache.counters().corrupt, 0u);
  EXPECT_TRUE(fs::exists(cache.entry_path(spec_b)));
}

TEST_F(ResultCacheTest, UncacheableInstrumentNameFailsTheStoreLoudly) {
  // A name the section parser could not read back must be rejected at
  // store time — writing it would make every future lookup a corrupt miss
  // (permanent re-simulate/re-store loop).
  RunResult result = run_one(small_spec());
  result.instruments.push_back(
      std::make_shared<CachedInstrument>("bad name", 0, ""));
  ResultCache cache(root_);
  EXPECT_THROW(cache.store(result), Error);
  EXPECT_FALSE(fs::exists(cache.entry_path(result.spec)));
}

TEST_F(ResultCacheTest, ConcurrentWritersLeaveAReadableEntry) {
  const RunSpec spec = small_spec();
  const RunResult result = run_one(spec);
  ResultCache cache(root_);

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < 8; ++i) cache.store(result);
    });
  }
  for (std::thread& writer : writers) writer.join();

  const auto cached = cache.lookup(spec);
  ASSERT_TRUE(cached.has_value());
  expect_same_sim(result.sim(), cached->sim());
  EXPECT_EQ(cache.disk_stats().entries, 1u);
}

TEST_F(ResultCacheTest, DiskStatsAndClear) {
  ResultCache cache(root_);
  cache.store(run_one(small_spec(1.5)));
  cache.store(run_one(small_spec(2.0)));
  cache.store(run_one(small_spec(3.0)));

  const ResultCache::DiskStats stats = cache.disk_stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_GT(stats.bytes, 0u);
  EXPECT_EQ(stats.stale_entries, 0u);

  EXPECT_EQ(cache.clear(), 3u);
  EXPECT_EQ(cache.disk_stats().entries, 0u);
  EXPECT_FALSE(cache.lookup(small_spec(1.5)).has_value());
}

TEST_F(ResultCacheTest, EvictStaleEpochs) {
  ResultCache cache(root_);
  cache.store(run_one(small_spec()));

  // An entry left behind by a (hypothetical) older binary.
  const fs::path stale = root_ / "v0" / "ab" / "abababababababab.entry";
  util::atomic_write_file(stale, "old format\n");
  EXPECT_EQ(cache.disk_stats().stale_entries, 1u);

  EXPECT_EQ(cache.evict_stale_epochs(), 1u);
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_EQ(cache.disk_stats().entries, 1u);  // current epoch untouched.
  EXPECT_TRUE(cache.lookup(small_spec()).has_value());
}

TEST_F(ResultCacheTest, TrimEvictsOldestFirst) {
  ResultCache cache(root_);
  const RunSpec old_spec = small_spec(1.5);
  const RunSpec new_spec = small_spec(3.0);
  cache.store(run_one(old_spec));
  cache.store(run_one(new_spec));
  // Make the eviction order explicit instead of relying on write timing.
  fs::last_write_time(cache.entry_path(old_spec),
                      fs::last_write_time(cache.entry_path(new_spec)) -
                          std::chrono::hours(1));

  const std::uintmax_t newer_size = fs::file_size(cache.entry_path(new_spec));
  EXPECT_EQ(cache.trim(newer_size), 1u);
  EXPECT_FALSE(cache.lookup(old_spec).has_value());
  EXPECT_TRUE(cache.lookup(new_spec).has_value());

  EXPECT_EQ(cache.trim(0), 1u);  // evict everything.
  EXPECT_EQ(cache.disk_stats().entries, 0u);
}

TEST_F(ResultCacheTest, TrimSkipsEntryRepublishedUnderItsLock) {
  // The trim/store race: trim() scans, then a concurrent writer
  // republishes the entry (tmp+rename), then trim unlinks it — deleting a
  // fresh result between its publish and first read. Fixed by taking the
  // entry's FileLock sidecar and re-checking the write time before the
  // unlink. This test forces the interleaving: a helper thread holds the
  // entry's lock before trim() starts, republishes the entry while trim
  // is blocked on that lock, and only then releases — the republished
  // entry must survive a trim(0) that would otherwise delete everything.
  const RunSpec spec = small_spec();
  const RunResult result = run_one(spec);
  ResultCache cache(root_);
  cache.store(result);
  const fs::path entry = cache.entry_path(spec);
  const std::string bytes = util::read_file_bytes(entry).value();
  // Make the scanned mtime old so the republish below visibly changes it.
  fs::last_write_time(entry,
                      fs::last_write_time(entry) - std::chrono::hours(2));

  std::promise<void> lock_held;
  std::thread writer([&] {
    fs::path lock_path = entry;
    lock_path += ".lock";
    const util::FileLock lock(lock_path);
    lock_held.set_value();
    // Give trim() ample time to finish its scan and block on our lock,
    // then republish (fresh mtime) and release.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    util::atomic_write_file(entry, bytes);
  });
  lock_held.get_future().wait();

  EXPECT_EQ(cache.trim(0), 0u);  // blocked, re-checked, skipped.
  writer.join();
  EXPECT_TRUE(fs::exists(entry));
  EXPECT_TRUE(cache.lookup(spec).has_value());
}

TEST_F(ResultCacheTest, TwoProcessTrimVsStoreStress) {
  // Cross-process variant: a child hammers store() while the parent
  // hammers trim(0). The FileLock sidecar serializes them, so whatever
  // interleaving happens, the store stays structurally sound, no process
  // crashes, and a final store/lookup round-trips.
  const RunSpec spec = small_spec();
  const RunResult result = run_one(spec);
  ResultCache cache(root_);
  cache.store(result);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: republish the entry in a tight loop, then exit cleanly.
    // _exit (not exit) keeps gtest's atexit machinery out of the child.
    try {
      ResultCache mine(root_);
      for (int i = 0; i < 200; ++i) mine.store(result);
    } catch (...) {
      ::_exit(2);
    }
    ::_exit(0);
  }
  for (int i = 0; i < 200; ++i) (void)cache.trim(0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  cache.store(result);
  const auto final_lookup = cache.lookup(spec);
  ASSERT_TRUE(final_lookup.has_value());
  expect_same_sim(result.sim(), final_lookup->sim());
}

TEST_F(ResultCacheTest, AbsorbCopiesMissingEntries) {
  const fs::path other_root = root_ / "other";
  ResultCache mine(root_ / "mine");
  ResultCache other(other_root);

  mine.store(run_one(small_spec(1.5)));
  other.store(run_one(small_spec(2.0)));
  other.store(run_one(small_spec(3.0)));

  EXPECT_EQ(mine.absorb(other_root), 2u);
  EXPECT_EQ(mine.disk_stats().entries, 3u);
  EXPECT_TRUE(mine.lookup(small_spec(2.0)).has_value());
  EXPECT_TRUE(mine.lookup(small_spec(3.0)).has_value());
  EXPECT_EQ(mine.absorb(other_root), 0u);  // idempotent.
}

// --- SweepRunner integration: the acceptance criterion -------------------

std::vector<RunSpec> acceptance_grid() {
  // 2 archives x 3 BSLD x 4 WQ x 5 scales = 120 distinct specs on short
  // traces: the "100+ spec grid" of the PR's acceptance criteria.
  std::vector<RunSpec> specs;
  for (const wl::Archive archive : {wl::Archive::kCTC, wl::Archive::kSDSC}) {
    for (const double threshold : {1.5, 2.0, 3.0}) {
      for (const std::optional<std::int64_t> wq :
           std::vector<std::optional<std::int64_t>>{0, 4, 16, std::nullopt}) {
        for (const double scale : {1.0, 1.1, 1.2, 1.5, 2.0}) {
          RunSpec spec;
          spec.workload = wl::WorkloadSource::from_archive(archive, 120);
          core::DvfsConfig dvfs;
          dvfs.bsld_threshold = threshold;
          dvfs.wq_threshold = wq;
          spec.policy.dvfs = dvfs;
          spec.size_scale = scale;
          specs.push_back(spec);
        }
      }
    }
  }
  return specs;
}

struct SweepCapture {
  std::string csv;
  std::string jsonl;
  SweepRunner::Progress progress;
};

SweepCapture run_grid_with_cache(const std::vector<RunSpec>& specs,
                                 ResultCache& cache) {
  std::ostringstream csv_out;
  std::ostringstream jsonl_out;
  CsvResultSink csv(csv_out);
  JsonlResultSink jsonl(jsonl_out);
  ReorderingSink ordered_csv(csv);
  ReorderingSink ordered_jsonl(jsonl);
  SweepRunner::Options options;
  options.threads = 4;
  options.cache = &cache;
  SweepRunner runner(options);
  runner.add_sink(ordered_csv);
  runner.add_sink(ordered_jsonl);
  (void)runner.run(specs);
  return {csv_out.str(), jsonl_out.str(), runner.progress()};
}

TEST_F(ResultCacheTest, RepeatedSweepOver100SpecGridIsAllHitsByteIdentical) {
  const std::vector<RunSpec> specs = acceptance_grid();
  ASSERT_GE(specs.size(), 100u);
  ResultCache cache(root_);

  const SweepCapture cold = run_grid_with_cache(specs, cache);
  EXPECT_EQ(cold.progress.executed, specs.size());
  EXPECT_EQ(cold.progress.cache_hits, 0u);

  const SweepCapture warm = run_grid_with_cache(specs, cache);
  EXPECT_EQ(warm.progress.executed, 0u);             // nothing simulated,
  EXPECT_EQ(warm.progress.cache_hits, specs.size()); // 100% cache hits,
  EXPECT_EQ(warm.progress.completed, specs.size());
  EXPECT_EQ(warm.csv, cold.csv);                     // byte-identical CSV,
  EXPECT_EQ(warm.jsonl, cold.jsonl);                 // and JSONL.
}

TEST_F(ResultCacheTest, SweepRunnerStoresThroughCacheAndDedups) {
  // Duplicated grid: dedup executes each distinct spec once, the cache
  // turns the second sweep into pure replay, and results keep fanning out
  // to every duplicate slot.
  std::vector<RunSpec> specs;
  for (int repeat = 0; repeat < 3; ++repeat) {
    specs.push_back(small_spec(1.5));
    specs.push_back(small_spec(2.0));
  }
  ResultCache cache(root_);
  SweepRunner::Options options;
  options.threads = 2;
  options.cache = &cache;

  SweepRunner cold(options);
  const auto cold_results = cold.run(specs);
  EXPECT_EQ(cold.progress().executed, 2u);
  EXPECT_EQ(cold.progress().deduplicated, 4u);
  EXPECT_EQ(cache.counters().stores, 2u);

  SweepRunner warm(options);
  const auto warm_results = warm.run(specs);
  EXPECT_EQ(warm.progress().executed, 0u);
  EXPECT_EQ(warm.progress().cache_hits, 2u);
  EXPECT_EQ(warm.progress().completed, specs.size());
  ASSERT_EQ(warm_results.size(), cold_results.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(warm_results[i].spec, specs[i]);
    expect_same_sim(cold_results[i].sim(), warm_results[i].sim());
  }
}

}  // namespace
}  // namespace bsld::report
