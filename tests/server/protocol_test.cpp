#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::server {
namespace {

TEST(RequestParserTest, SimpleVerbs) {
  RequestParser parser;
  const auto ping = parser.feed("ping");
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->kind, Request::Kind::kPing);
  const auto stats = parser.feed("stats");
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->kind, Request::Kind::kStats);
  const auto shutdown = parser.feed("shutdown");
  ASSERT_TRUE(shutdown.has_value());
  EXPECT_EQ(shutdown->kind, Request::Kind::kShutdown);
}

TEST(RequestParserTest, BlankLinesBetweenRequestsIgnored) {
  RequestParser parser;
  EXPECT_FALSE(parser.feed("").has_value());
  EXPECT_FALSE(parser.feed("   ").has_value());
  EXPECT_TRUE(parser.feed("ping").has_value());
}

TEST(RequestParserTest, RunRequestCollectsBodyUntilEnd) {
  RequestParser parser;
  EXPECT_FALSE(parser.feed("run jsonl").has_value());
  EXPECT_TRUE(parser.mid_request());
  EXPECT_FALSE(parser.feed("workload.source = archive").has_value());
  EXPECT_FALSE(parser.feed("workload.archive = CTC").has_value());
  const auto request = parser.feed("end");
  ASSERT_TRUE(request.has_value());
  EXPECT_FALSE(parser.mid_request());
  EXPECT_EQ(request->kind, Request::Kind::kRun);
  EXPECT_EQ(request->format, "jsonl");
  EXPECT_EQ(request->config.get_string("workload.archive", ""), "CTC");
}

TEST(RequestParserTest, RunDefaultsToCsv) {
  RequestParser parser;
  EXPECT_FALSE(parser.feed("run").has_value());
  const auto request = parser.feed("end");
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->format, "csv");
}

TEST(RequestParserTest, BadFormatRejectedAndBodySwallowedUntilEnd) {
  RequestParser parser;
  EXPECT_THROW((void)parser.feed("run table"), Error);
  // The client committed to a body; its lines must not be misread as
  // verbs — the stream resynchronizes at the request's `end`.
  EXPECT_FALSE(parser.feed("workload.jobs = 5").has_value());
  EXPECT_FALSE(parser.feed("end").has_value());
  EXPECT_TRUE(parser.feed("ping").has_value());
}

TEST(RequestParserTest, UnknownVerbRejected) {
  RequestParser parser;
  try {
    (void)parser.feed("launch-missiles");
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("launch-missiles"),
              std::string::npos);
  }
}

TEST(RequestParserTest, VerbArgumentsRejected) {
  RequestParser parser;
  EXPECT_THROW((void)parser.feed("ping hard"), Error);
  EXPECT_THROW((void)parser.feed("shutdown --now"), Error);
}

TEST(RequestParserTest, MalformedBodyNamesTheLine) {
  RequestParser parser;
  EXPECT_FALSE(parser.feed("run csv").has_value());
  EXPECT_FALSE(parser.feed("just words, no equals").has_value());
  try {
    (void)parser.feed("end");
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("line 1"), std::string::npos);
  }
  EXPECT_FALSE(parser.mid_request());  // reset after the error.
  EXPECT_TRUE(parser.feed("ping").has_value());
}

TEST(RequestParserTest, OversizedBodyErrorsOnceAndResyncsAtEnd) {
  RequestParser parser;
  EXPECT_FALSE(parser.feed("run csv").has_value());
  for (std::size_t i = 0; i < RequestParser::kMaxBodyLines; ++i) {
    // Append form rather than operator+ to dodge a GCC 12 -Wrestrict
    // false positive (same workaround as result_cache.cpp).
    std::string line = "k";
    line += std::to_string(i);
    line += " = 1";
    EXPECT_FALSE(parser.feed(line).has_value());
  }
  EXPECT_THROW((void)parser.feed("one line too many = 1"), Error);
  // The request's remaining lines must not be misread as verbs; the
  // stream resynchronizes at the request's own `end`.
  EXPECT_FALSE(parser.feed("still = body").has_value());
  EXPECT_FALSE(parser.feed("end").has_value());
  const auto next = parser.feed("ping");
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(next->kind, Request::Kind::kPing);
}

TEST(ReplyFramingTest, OkReplyRoundTrips) {
  const std::string reply = ok_reply("rows=2 executed=1", "payload\n");
  EXPECT_EQ(reply, "ok rows=2 executed=1 bytes=8\npayload\nend\n");
  const ReplyHeader header =
      parse_reply_header("ok rows=2 executed=1 bytes=8");
  EXPECT_TRUE(header.ok);
  EXPECT_EQ(header.payload_bytes, 8u);
  ASSERT_EQ(header.attrs.size(), 3u);
  EXPECT_EQ(header.attrs[0].first, "rows");
  EXPECT_EQ(header.attrs[0].second, "2");
}

TEST(ReplyFramingTest, EmptyAttrsOkReply) {
  EXPECT_EQ(ok_reply("", ""), "ok bytes=0\nend\n");
  const ReplyHeader header = parse_reply_header("ok bytes=0");
  EXPECT_TRUE(header.ok);
  EXPECT_EQ(header.payload_bytes, 0u);
}

TEST(ReplyFramingTest, ErrReplyFlattensNewlines) {
  const std::string reply = err_reply("bad\nnews");
  EXPECT_EQ(reply, "err bad news\n");
  const ReplyHeader header = parse_reply_header("err bad news");
  EXPECT_FALSE(header.ok);
  EXPECT_EQ(header.error, "bad news");
}

TEST(ReplyFramingTest, MalformedHeadersRejected) {
  EXPECT_THROW((void)parse_reply_header("howdy"), Error);
  EXPECT_THROW((void)parse_reply_header("ok rows=1"), Error);  // no bytes=.
  EXPECT_THROW((void)parse_reply_header("ok bytes=many"), Error);
  EXPECT_THROW((void)parse_reply_header("ok bytes=-1"), Error);
}

}  // namespace
}  // namespace bsld::server
