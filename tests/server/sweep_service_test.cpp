#include "server/sweep_service.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "report/grid.hpp"
#include "report/result_cache.hpp"
#include "report/sinks.hpp"
#include "util/error.hpp"

namespace bsld::server {
namespace {

namespace fs = std::filesystem;

constexpr const char* kGridText =
    "workload.source = archive\n"
    "workload.archive = CTC\n"
    "workload.jobs = 150\n"
    "sweep.bsld_thresholds = 1.5, 2\n";

Request run_request(const std::string& body, const std::string& format) {
  RequestParser parser;
  (void)parser.feed("run " + format);
  std::istringstream in(body);
  std::optional<Request> request;
  for (std::string line; std::getline(in, line);) {
    request = parser.feed(line);
  }
  request = parser.feed("end");
  EXPECT_TRUE(request.has_value());
  return *request;
}

class SweepServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("bsld-service-test-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    cache_ = std::make_unique<report::ResultCache>(root_);
    SweepService::Options options;
    options.threads = 2;
    options.cache = cache_.get();
    service_ = std::make_unique<SweepService>(options);
  }
  void TearDown() override {
    service_->drain();
    service_.reset();
    cache_.reset();
    fs::remove_all(root_);
  }

  fs::path root_;
  std::unique_ptr<report::ResultCache> cache_;
  std::unique_ptr<SweepService> service_;
};

TEST_F(SweepServiceTest, PayloadMatchesDirectSinkOutput) {
  // The byte-identity half of the acceptance criterion, library level:
  // the service's payload must equal what the direct sweep path renders
  // for the same grid config.
  const SweepService::RunReply reply =
      service_->run(run_request(kGridText, "csv"));
  EXPECT_EQ(reply.rows, 2u);
  EXPECT_EQ(reply.progress.executed, 2u);

  const std::vector<report::RunSpec> specs =
      report::expand_grid(util::Config::parse(kGridText));
  std::ostringstream direct;
  report::CsvResultSink csv(direct);
  report::ReorderingSink ordered(csv);
  report::SweepRunner runner(report::SweepRunner::Options{.threads = 2});
  runner.add_sink(ordered);
  (void)runner.run(specs);

  EXPECT_EQ(reply.payload, direct.str());
}

TEST_F(SweepServiceTest, WarmRepeatIsPureCacheReplayByteIdentical) {
  const SweepService::RunReply cold =
      service_->run(run_request(kGridText, "csv"));
  EXPECT_EQ(cold.progress.executed, 2u);
  EXPECT_EQ(cold.progress.cache_hits, 0u);

  const SweepService::RunReply warm =
      service_->run(run_request(kGridText, "csv"));
  EXPECT_EQ(warm.progress.executed, 0u);  // the simulator never ran,
  EXPECT_EQ(warm.progress.cache_hits, 2u);
  EXPECT_EQ(warm.payload, cold.payload);  // and the bytes are identical.
}

TEST_F(SweepServiceTest, JsonlFormatRenders) {
  const SweepService::RunReply reply =
      service_->run(run_request(kGridText, "jsonl"));
  EXPECT_EQ(reply.payload.rfind("{\"index\":0", 0), 0u);
  EXPECT_NE(reply.payload.find("\n{\"index\":1"), std::string::npos);
}

TEST_F(SweepServiceTest, SingleSpecConfigIsAOneRowGrid) {
  const SweepService::RunReply reply = service_->run(run_request(
      "workload.source = archive\nworkload.archive = CTC\n"
      "workload.jobs = 120\n",
      "csv"));
  EXPECT_EQ(reply.rows, 1u);
  EXPECT_NE(reply.payload.find("\n0,"), std::string::npos);
}

TEST_F(SweepServiceTest, MalformedNumericSpecRaisesNamedError) {
  const Request request = run_request(
      "workload.source = archive\nworkload.archive = CTC\n"
      "policy.dvfs = true\npolicy.bsld_threshold = 2x5\n",
      "csv");
  try {
    (void)service_->run(request);
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("policy.bsld_threshold"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("2x5"), std::string::npos);
  }
  // The service survives the bad request and serves the next one.
  EXPECT_EQ(service_->run(run_request(kGridText, "csv")).rows, 2u);
}

TEST_F(SweepServiceTest, StatsPayloadParsesAsConfig) {
  (void)service_->run(run_request(kGridText, "csv"));
  const util::Config stats = util::Config::parse(service_->stats_payload());
  EXPECT_EQ(stats.get_int("store.entries", -1), 2);
  EXPECT_EQ(stats.get_int("cache.stores", -1), 2);
  EXPECT_EQ(stats.get_string("cache.root", ""), root_.string());
}

}  // namespace
}  // namespace bsld::server
