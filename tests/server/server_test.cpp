#include "server/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "report/result_cache.hpp"
#include "server/protocol.hpp"
#include "util/error.hpp"
#include "util/socket.hpp"

namespace bsld::server {
namespace {

namespace fs = std::filesystem;

constexpr const char* kRunRequest =
    "run csv\n"
    "workload.source = archive\n"
    "workload.archive = CTC\n"
    "workload.jobs = 120\n"
    "end\n";

/// One reply frame read off the wire.
struct Frame {
  ReplyHeader header;
  std::string payload;
};

Frame read_frame(util::SocketStream& stream) {
  Frame frame;
  const std::optional<std::string> line = stream.read_line();
  EXPECT_TRUE(line.has_value());
  frame.header = parse_reply_header(line.value());
  if (frame.header.ok) {
    frame.payload = stream.read_bytes(frame.header.payload_bytes);
    const std::optional<std::string> end = stream.read_line();
    EXPECT_TRUE(end.has_value());
    EXPECT_EQ(end.value_or(""), "end");
  }
  return frame;
}

std::string attr(const Frame& frame, const std::string& key) {
  for (const auto& [k, v] : frame.header.attrs) {
    if (k == key) return v;
  }
  return "";
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keep the socket path short: sockaddr_un caps it around 107 bytes.
    base_ = fs::temp_directory_path() /
            ("bsld-srv-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(base_);
    fs::create_directories(base_);
    cache_ = std::make_unique<report::ResultCache>(base_ / "cache");
    Server::Options options;
    options.socket_path = (base_ / "sock").string();
    options.threads = 2;
    options.cache = cache_.get();
    server_ = std::make_unique<Server>(options);  // binds immediately.
    serve_thread_ = std::jthread([this] { exit_code_ = server_->serve(); });
  }
  void TearDown() override {
    server_->stop();
    if (serve_thread_.joinable()) serve_thread_.join();
    server_.reset();
    cache_.reset();
    fs::remove_all(base_);
  }

  [[nodiscard]] util::SocketStream connect() const {
    return util::SocketStream::connect_unix((base_ / "sock").string());
  }

  fs::path base_;
  std::unique_ptr<report::ResultCache> cache_;
  std::unique_ptr<Server> server_;
  std::jthread serve_thread_;
  int exit_code_ = -1;
};

TEST_F(ServerTest, PingPong) {
  util::SocketStream client = connect();
  client.write_all("ping\n");
  const Frame frame = read_frame(client);
  EXPECT_TRUE(frame.header.ok);
  EXPECT_EQ(attr(frame, "pong"), "1");
}

TEST_F(ServerTest, ColdThenWarmRunIsByteIdenticalAndNeverSimulatesTwice) {
  util::SocketStream client = connect();
  client.write_all(kRunRequest);
  const Frame cold = read_frame(client);
  ASSERT_TRUE(cold.header.ok);
  EXPECT_EQ(attr(cold, "executed"), "1");
  EXPECT_EQ(attr(cold, "cache_hits"), "0");
  EXPECT_FALSE(cold.payload.empty());

  // Same connection, same request: a pure cache replay.
  client.write_all(kRunRequest);
  const Frame warm = read_frame(client);
  ASSERT_TRUE(warm.header.ok);
  EXPECT_EQ(attr(warm, "executed"), "0");
  EXPECT_EQ(attr(warm, "cache_hits"), "1");
  EXPECT_EQ(warm.payload, cold.payload);

  // A second client is warm too — the cache is shared, not per-connection.
  util::SocketStream other = connect();
  other.write_all(kRunRequest);
  const Frame second = read_frame(other);
  ASSERT_TRUE(second.header.ok);
  EXPECT_EQ(attr(second, "executed"), "0");
  EXPECT_EQ(second.payload, cold.payload);
}

TEST_F(ServerTest, MalformedRequestsAnswerErrAndKeepTheConnection) {
  util::SocketStream client = connect();
  client.write_all("frobnicate\n");
  const Frame bad_verb = read_frame(client);
  EXPECT_FALSE(bad_verb.header.ok);
  EXPECT_NE(bad_verb.header.error.find("frobnicate"), std::string::npos);

  client.write_all(
      "run csv\n"
      "workload.source = archive\n"
      "workload.archive = CTC\n"
      "policy.dvfs = true\n"
      "policy.bsld_threshold = 2x5\n"
      "end\n");
  const Frame bad_number = read_frame(client);
  EXPECT_FALSE(bad_number.header.ok);
  EXPECT_NE(bad_number.header.error.find("policy.bsld_threshold"),
            std::string::npos);

  // The daemon is still alive and serving on the same connection.
  client.write_all("ping\n");
  EXPECT_TRUE(read_frame(client).header.ok);
}

TEST_F(ServerTest, StatsReportStoreContents) {
  util::SocketStream client = connect();
  client.write_all(kRunRequest);
  ASSERT_TRUE(read_frame(client).header.ok);
  client.write_all("stats\n");
  const Frame stats = read_frame(client);
  ASSERT_TRUE(stats.header.ok);
  const util::Config parsed = util::Config::parse(stats.payload);
  EXPECT_EQ(parsed.get_int("store.entries", -1), 1);
}

TEST_F(ServerTest, SecondDaemonOnTheSameSocketIsRefused) {
  // A live daemon's socket must not be silently stolen (and its file not
  // unlinked) by an accidental second `bsldsim serve`.
  Server::Options options;
  options.socket_path = (base_ / "sock").string();
  options.threads = 1;
  options.cache = cache_.get();
  EXPECT_THROW(Server second(options), Error);
  // The first daemon is unharmed and still serving.
  util::SocketStream client = connect();
  client.write_all("ping\n");
  EXPECT_TRUE(read_frame(client).header.ok);
}

TEST_F(ServerTest, ClientShutdownDrainsWithExitCodeZero) {
  {
    util::SocketStream client = connect();
    client.write_all("shutdown\n");
    const Frame frame = read_frame(client);
    EXPECT_TRUE(frame.header.ok);
    EXPECT_EQ(attr(frame, "stopping"), "1");
  }
  serve_thread_.join();
  EXPECT_EQ(exit_code_, 0);
}

TEST_F(ServerTest, StopFromAnotherThreadDrains) {
  util::SocketStream client = connect();
  client.write_all("ping\n");
  ASSERT_TRUE(read_frame(client).header.ok);
  server_->stop();  // what the SIGTERM handler calls.
  serve_thread_.join();
  EXPECT_EQ(exit_code_, 0);
}

}  // namespace
}  // namespace bsld::server
