/// \file pm_driver_test.cpp
/// \brief End-to-end power management through the simulation loop:
/// pm=none bit-parity with no manager at all, cap throttling and gating
/// effects on real runs, sleep wake latencies, and setpoint determinism.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "pm/registry.hpp"
#include "pm/spec.hpp"
#include "testing/helpers.hpp"

namespace bsld::sim {
namespace {

using testing::job;
using testing::Models;
using testing::run;
using testing::workload;

wl::Workload mixed_workload() {
  return workload(8, {job(1, 0, 100, 200, 4), job(2, 10, 50, 100, 2),
                      job(3, 20, 200, 400, 2), job(4, 30, 80, 160, 4),
                      job(5, 400, 60, 120, 8), job(6, 500, 30, 60, 1)});
}

std::unique_ptr<pm::PowerManager> make_manager(const pm::PmSpec& spec,
                                               const Models& models) {
  return pm::PowerManagerRegistry::global().make(spec, models.power);
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.avg_bsld, b.avg_bsld);
  EXPECT_EQ(a.avg_wait, b.avg_wait);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.jobs_per_gear, b.jobs_per_gear);
  EXPECT_EQ(a.energy.computational_joules, b.energy.computational_joules);
  EXPECT_EQ(a.energy.total_joules, b.energy.total_joules);
  EXPECT_EQ(a.energy.idle_joules, b.energy.idle_joules);
  EXPECT_EQ(a.energy.sleep_core_seconds, b.energy.sleep_core_seconds);
  EXPECT_EQ(a.energy.sleep_joules, b.energy.sleep_joules);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].start, b.jobs[i].start) << i;
    EXPECT_EQ(a.jobs[i].end, b.jobs[i].end) << i;
    EXPECT_EQ(a.jobs[i].gear, b.jobs[i].gear) << i;
    EXPECT_EQ(a.jobs[i].bsld, b.jobs[i].bsld) << i;
  }
}

TEST(PmDriver, NoneManagerIsBitIdenticalToNoManager) {
  const Models models;
  const wl::Workload load = mixed_workload();
  const std::unique_ptr<pm::PowerManager> none =
      make_manager(pm::PmSpec{}, models);

  // Both the no-DVFS baseline and the paper's DVFS policy: the registered
  // "none" manager must not perturb a single event on either path.
  for (const auto& dvfs : {std::optional<core::DvfsConfig>{},
                           std::optional<core::DvfsConfig>{core::DvfsConfig{}}}) {
    const SimulationResult bare =
        run(load, models, core::BasePolicy::kEasy, dvfs);
    SimulationConfig config;
    config.power_manager = none.get();
    const SimulationResult managed =
        run(load, models, core::BasePolicy::kEasy, dvfs, "FirstFit", config);
    expect_identical(bare, managed);
  }
}

TEST(PmDriver, CapThrottleDilatesTheRun) {
  const Models models;
  // One 4-CPU job on a 4-CPU machine under a cap that only fits gear 2:
  // the whole run executes at gear 2 and the makespan is the dilated
  // runtime, exactly as the time model predicts.
  const wl::Workload load = workload(4, {job(1, 0, 1000, 2000, 4)});
  pm::PmSpec spec;
  spec.name = "cap-uniform";
  spec.cap_watts = 4.0 * models.power.active_power(2);
  const std::unique_ptr<pm::PowerManager> manager = make_manager(spec, models);

  SimulationConfig config;
  config.power_manager = manager.get();
  const SimulationResult capped =
      run(load, models, core::BasePolicy::kEasy, std::nullopt, "FirstFit",
          config);
  ASSERT_EQ(capped.jobs.size(), 1U);
  EXPECT_EQ(capped.jobs[0].gear, 2);
  EXPECT_EQ(capped.makespan, models.time.scale_duration(1000, 2));

  const SimulationResult free_run = run(load, models);
  EXPECT_GT(capped.makespan, free_run.makespan);
  // Running lower and longer trades energy: less power but stretched
  // idle-free runtime; computational energy must drop at the lower gear.
  EXPECT_LT(capped.energy.computational_joules,
            free_run.energy.computational_joules);
}

TEST(PmDriver, GatedAdmissionRunsAfterTheBudgetFrees) {
  const Models models;
  // Two 4-CPU jobs on an 8-CPU machine: without a cap they run side by
  // side; under 150 W only one fits (at gear 1), the other is gated on
  // its allocation and executes after the first finishes.
  const wl::Workload load =
      workload(8, {job(1, 0, 100, 200, 4), job(2, 0, 100, 200, 4)});
  pm::PmSpec spec;
  spec.name = "cap-uniform";
  spec.cap_watts = 150.0;
  const std::unique_ptr<pm::PowerManager> manager = make_manager(spec, models);

  SimulationConfig config;
  config.power_manager = manager.get();
  const SimulationResult capped =
      run(load, models, core::BasePolicy::kEasy, std::nullopt, "FirstFit",
          config);
  const Time dilated = models.time.scale_duration(100, 1);
  ASSERT_EQ(capped.jobs.size(), 2U);
  EXPECT_EQ(capped.jobs[0].end, dilated);
  // The gated job holds its allocation from t=0; its gated wait shows up
  // as stretched runtime (start stays at the allocation time), and it
  // only executes after job 1 releases the budget.
  EXPECT_EQ(capped.jobs[1].start, 0);
  EXPECT_EQ(capped.jobs[1].end, 2 * dilated);
  EXPECT_EQ(capped.makespan, 2 * dilated);

  const SimulationResult free_run = run(load, models);
  EXPECT_EQ(free_run.makespan, 100);  // Side by side at the top gear.
}

TEST(PmDriver, SleepWakeLatencyShiftsTheSecondJob) {
  const Models models;
  // Job 2 arrives after CPU 0 slept past the first C-state threshold: its
  // completion carries the 10 s wake latency on top of its runtime.
  const wl::Workload load =
      workload(4, {job(1, 0, 10, 20, 1), job(2, 1000, 10, 20, 1)});
  pm::PmSpec spec;
  spec.name = "sleep";
  const std::unique_ptr<pm::PowerManager> manager = make_manager(spec, models);

  SimulationConfig config;
  config.power_manager = manager.get();
  const SimulationResult slept =
      run(load, models, core::BasePolicy::kEasy, std::nullopt, "FirstFit",
          config);
  const SimulationResult awake = run(load, models);
  ASSERT_EQ(slept.jobs.size(), 2U);
  EXPECT_EQ(awake.jobs[1].end, 1010);
  EXPECT_EQ(slept.jobs[1].end, 1020);  // + the state-0 wake latency.

  // Sleeping CPUs were repriced below idle power: the sleep accounting is
  // populated and total energy drops against the no-manager run.
  EXPECT_GT(slept.energy.sleep_core_seconds, 0.0);
  EXPECT_GT(slept.energy.sleep_joules, 0.0);
  EXPECT_LT(slept.energy.sleep_joules,
            slept.energy.sleep_core_seconds * models.power.idle_power());
  EXPECT_LT(slept.energy.total_joules, awake.energy.total_joules);
}

TEST(PmDriver, SetpointRunsAreDeterministicAndBinding) {
  const Models models;
  const wl::Workload load = mixed_workload();
  pm::PmSpec spec;
  spec.name = "setpoint";
  spec.setpoint_watts = 50.0;  // Far below any active configuration.
  spec.interval_s = 60;

  const auto run_once = [&] {
    const std::unique_ptr<pm::PowerManager> manager =
        make_manager(spec, models);
    SimulationConfig config;
    config.power_manager = manager.get();
    return run(load, models, core::BasePolicy::kEasy, std::nullopt,
               "FirstFit", config);
  };
  const SimulationResult first = run_once();
  const SimulationResult second = run_once();
  expect_identical(first, second);

  // A 50 W target on a ~400 W load is binding: the controller throttles
  // the cluster and the run stretches past the unmanaged one.
  const SimulationResult free_run = run(load, models);
  EXPECT_GT(first.makespan, free_run.makespan);
}

}  // namespace
}  // namespace bsld::sim
