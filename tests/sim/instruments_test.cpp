/// \file instruments_test.cpp
/// \brief Unit tests of the built-in instruments and the
/// InstrumentRegistry: incremental aggregates (including the trace-order
/// BSLD reorder buffer), time-series traces, and string-keyed
/// construction.
#include "sim/instruments.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "sim/instrument_registry.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::sim {
namespace {

using testing::Models;
using testing::job;
using testing::workload;

/// Feeds hand-built events straight into an observer — instruments are
/// plain objects, so measurement logic is testable without a simulation.
struct EventFeeder {
  explicit EventFeeder(const wl::Workload& load) : load_(load) {}

  void begin(SimObserver& observer, std::int32_t cpus,
             std::size_t gear_count) {
    observer.on_run_begin(RunBeginEvent{
        load_.name, static_cast<std::int64_t>(load_.jobs.size()), cpus,
        gear_count, 600});
  }

  void finish(SimObserver& observer, std::size_t trace_index,
              const JobOutcome& outcome) {
    observer.on_finish(FinishEvent{outcome, trace_index,
                                   outcome.end - outcome.start});
  }

  const wl::Workload& load_;
};

JobOutcome outcome_for(JobId id, Time submit, Time start, Time end,
                       GearIndex gear, double bsld,
                       std::int32_t size = 1) {
  JobOutcome out;
  out.id = id;
  out.submit = submit;
  out.size = size;
  out.start = start;
  out.end = end;
  out.gear = gear;
  out.final_gear = gear;
  out.scaled_runtime = end - start;
  out.bsld = bsld;
  return out;
}

TEST(AggregateAccumulatorTest, OutOfOrderFinishesReproduceTraceOrderSum) {
  // Six jobs finishing in scrambled order; the accumulator's reorder
  // buffer must add their BSLDs in trace order, bit-identical to a naive
  // loop over a retained vector.
  const std::vector<double> bslds{1.25, 3.7, 1.0, 2.9, 10.125, 1.5};
  const wl::Workload load = workload(
      4, {job(1, 0, 10, 20, 1), job(2, 1, 10, 20, 1), job(3, 2, 10, 20, 1),
          job(4, 3, 10, 20, 1), job(5, 4, 10, 20, 1), job(6, 5, 10, 20, 1)});
  const std::vector<std::size_t> finish_order{2, 0, 4, 1, 5, 3};

  AggregateAccumulator accumulator;
  EventFeeder feeder(load);
  feeder.begin(accumulator, 4, 6);
  for (const std::size_t index : finish_order) {
    feeder.finish(accumulator,
                  index,
                  outcome_for(static_cast<JobId>(index + 1),
                              static_cast<Time>(index), 100, 150 + 10 * index,
                              index % 2 == 0 ? 0 : 5, bslds[index]));
  }

  double naive = 0.0;
  for (const double bsld : bslds) naive += bsld;
  EXPECT_EQ(accumulator.avg_bsld(), naive / 6.0);
  EXPECT_EQ(accumulator.count(), 6);
  EXPECT_EQ(accumulator.reduced_jobs(), 3);  // gear 0 jobs (top is 5)
  EXPECT_EQ(accumulator.jobs_per_gear()[0], 3);
  EXPECT_EQ(accumulator.jobs_per_gear()[5], 3);
  EXPECT_EQ(accumulator.makespan(), 200);
}

TEST(AggregateAccumulatorTest, UndrainedReorderBufferIsAnError) {
  const wl::Workload load =
      workload(2, {job(1, 0, 10, 20, 1), job(2, 1, 10, 20, 1)});
  AggregateAccumulator accumulator;
  EventFeeder feeder(load);
  feeder.begin(accumulator, 2, 6);
  // Only the second job finished: the trace-order sum cannot be formed.
  feeder.finish(accumulator, 1, outcome_for(2, 1, 5, 20, 5, 1.5));
  EXPECT_THROW((void)accumulator.avg_bsld(), Error);
}

TEST(JobRecorderTest, RecordsInTraceOrderRegardlessOfFinishOrder) {
  const wl::Workload load =
      workload(2, {job(7, 0, 10, 20, 1), job(9, 1, 10, 20, 1)});
  JobRecorder recorder;
  EventFeeder feeder(load);
  feeder.begin(recorder, 2, 6);
  feeder.finish(recorder, 1, outcome_for(9, 1, 5, 30, 5, 2.0));
  feeder.finish(recorder, 0, outcome_for(7, 0, 0, 10, 5, 1.0));
  ASSERT_EQ(recorder.jobs().size(), 2u);
  EXPECT_EQ(recorder.jobs()[0].id, 7);
  EXPECT_EQ(recorder.jobs()[1].id, 9);
}

TEST(WaitQueueTraceTest, TracksPerJobWaitsAndQueueDepth) {
  Models models;
  const wl::Workload load =
      workload(2, {job(1, 0, 700, 700, 2), job(2, 0, 700, 700, 2)});
  const auto policy =
      core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
  Simulation simulation(load, *policy, models.power, models.time);
  WaitQueueTrace trace;
  simulation.add_observer(trace);
  (void)simulation.run();

  ASSERT_EQ(trace.waits().size(), 2u);
  EXPECT_EQ(trace.waits()[0].wait, 0);
  EXPECT_EQ(trace.waits()[1].wait, 700);
  EXPECT_EQ(trace.waits()[1].start, 700);

  // t=0: both submit, job 1 starts -> depth 1 (same-time coalescing);
  // t=700: job 2 starts -> depth 0.
  ASSERT_EQ(trace.depth().size(), 2u);
  EXPECT_EQ(trace.depth()[0].time, 0);
  EXPECT_EQ(trace.depth()[0].depth, 1);
  EXPECT_EQ(trace.depth()[1].time, 700);
  EXPECT_EQ(trace.depth()[1].depth, 0);

  // Job 1 starts before job 2 submits, so each saw a queue of just itself.
  EXPECT_EQ(trace.waits()[0].depth_after_submit, 1);
  EXPECT_EQ(trace.waits()[1].depth_after_submit, 1);

  std::ostringstream csv;
  trace.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "job_index,submit_s,start_s,wait_s,queue_depth_after_submit\n"
            "0,0,0,0,1\n"
            "1,0,700,700,1\n");
}

TEST(UtilizationTraceTest, PiecewiseBusyCoresAndPower) {
  Models models;
  const wl::Workload load =
      workload(4, {job(1, 0, 100, 120, 3), job(2, 0, 200, 220, 1)});
  const auto policy =
      core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
  Simulation simulation(load, *policy, models.power, models.time);
  UtilizationTrace trace(models.power);
  simulation.add_observer(trace);
  (void)simulation.run();

  const double top_power =
      models.power.active_power(models.gears.top_index());
  // t=0: both start (4 busy); t=100: job 1 ends (1 busy); t=200: idle.
  ASSERT_EQ(trace.samples().size(), 3u);
  EXPECT_EQ(trace.samples()[0].busy_cores, 4);
  EXPECT_DOUBLE_EQ(trace.samples()[0].utilization, 1.0);
  EXPECT_NEAR(trace.samples()[0].power_watts, 4.0 * top_power, 1e-9);
  EXPECT_EQ(trace.samples()[1].time, 100);
  EXPECT_EQ(trace.samples()[1].busy_cores, 1);
  EXPECT_EQ(trace.samples()[2].time, 200);
  EXPECT_EQ(trace.samples()[2].busy_cores, 0);
  EXPECT_NEAR(trace.samples()[2].power_watts, 0.0, 1e-9);
}

TEST(InstrumentRegistryTest, BuiltinsAreRegisteredSorted) {
  const std::vector<std::string> names = InstrumentRegistry::global().names();
  const std::vector<std::string> expected{"aggregates", "energy", "jobs",
                                          "utilization", "wait-trace"};
  for (const std::string& name : expected) {
    EXPECT_TRUE(InstrumentRegistry::global().has(name)) << name;
  }
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(InstrumentRegistryTest, MakeConstructsByNameAndRejectsUnknown) {
  Models models;
  const InstrumentContext context{models.power, models.time};
  const auto instrument =
      InstrumentRegistry::global().make("wait-trace", context);
  ASSERT_NE(instrument, nullptr);
  EXPECT_EQ(instrument->name(), "wait-trace");
  EXPECT_NE(dynamic_cast<WaitQueueTrace*>(instrument.get()), nullptr);

  try {
    (void)InstrumentRegistry::global().make("no-such-instrument", context);
    FAIL() << "expected bsld::Error";
  } catch (const Error& error) {
    EXPECT_NE(std::string(error.what()).find("wait-trace"),
              std::string::npos)
        << error.what();
  }
}

TEST(InstrumentRegistryTest, DownstreamRegistrationAndDuplicateRejection) {
  class NullInstrument final : public Instrument {
   public:
    [[nodiscard]] std::string name() const override { return "null"; }
    void write_csv(std::ostream& out) const override { out << "n\n"; }
  };
  InstrumentRegistry registry;
  registry.add("null", [](const InstrumentContext&) {
    return std::make_unique<NullInstrument>();
  });
  EXPECT_TRUE(registry.has("null"));
  EXPECT_THROW(registry.add("null",
                            [](const InstrumentContext&) {
                              return std::make_unique<NullInstrument>();
                            }),
               Error);
}

}  // namespace
}  // namespace bsld::sim
