#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace bsld::sim {
namespace {

TEST(EngineTest, EmptyEngine) {
  Engine engine;
  EXPECT_TRUE(engine.empty());
  EXPECT_EQ(engine.now(), 0);
  EXPECT_FALSE(engine.pop().has_value());
}

TEST(EngineTest, PopsInTimeOrder) {
  Engine engine;
  engine.schedule({30, EventKind::kJobSubmit, 0, 3});
  engine.schedule({10, EventKind::kJobSubmit, 0, 1});
  engine.schedule({20, EventKind::kJobSubmit, 0, 2});
  EXPECT_EQ(engine.pop()->job, 1);
  EXPECT_EQ(engine.now(), 10);
  EXPECT_EQ(engine.pop()->job, 2);
  EXPECT_EQ(engine.pop()->job, 3);
  EXPECT_EQ(engine.now(), 30);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, CompletionsBeforeSubmissionsAtSameInstant) {
  Engine engine;
  engine.schedule({100, EventKind::kJobSubmit, 0, 1});
  engine.schedule({100, EventKind::kJobEnd, 0, 2});
  EXPECT_EQ(engine.pop()->kind, EventKind::kJobEnd);
  EXPECT_EQ(engine.pop()->kind, EventKind::kJobSubmit);
}

TEST(EngineTest, FifoWithinSameTimeAndKind) {
  Engine engine;
  for (JobId id = 1; id <= 5; ++id) {
    engine.schedule({50, EventKind::kJobSubmit, 0, id});
  }
  for (JobId id = 1; id <= 5; ++id) {
    EXPECT_EQ(engine.pop()->job, id);
  }
}

TEST(EngineTest, SchedulingInThePastRejected) {
  Engine engine;
  engine.schedule({100, EventKind::kJobSubmit, 0, 1});
  (void)engine.pop();
  EXPECT_THROW(engine.schedule({99, EventKind::kJobSubmit, 0, 2}), Error);
  // Scheduling exactly "now" is allowed (job chains at the same instant).
  engine.schedule({100, EventKind::kJobEnd, 0, 3});
  EXPECT_EQ(engine.pop()->job, 3);
}

TEST(EngineTest, InterleavedScheduleAndPop) {
  Engine engine;
  engine.schedule({10, EventKind::kJobSubmit, 0, 1});
  EXPECT_EQ(engine.pop()->job, 1);
  engine.schedule({20, EventKind::kJobEnd, 0, 2});
  engine.schedule({15, EventKind::kJobSubmit, 0, 3});
  EXPECT_EQ(engine.pop()->job, 3);
  EXPECT_EQ(engine.pop()->job, 2);
}

TEST(EngineTest, ProcessedCounter) {
  Engine engine;
  engine.schedule({1, EventKind::kJobSubmit, 0, 1});
  engine.schedule({2, EventKind::kJobSubmit, 0, 2});
  EXPECT_EQ(engine.processed(), 0u);
  (void)engine.pop();
  (void)engine.pop();
  EXPECT_EQ(engine.processed(), 2u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(EngineTest, BucketTableGrowsAndShrinksWithLoad) {
  Engine engine;
  const std::size_t initial = engine.bucket_count();
  // Push far past the grow threshold (load factor kTargetLoad per bucket);
  // the calendar must widen its table.
  for (int i = 0; i < 4096; ++i) {
    engine.schedule({i, EventKind::kJobSubmit, 0, i});
  }
  EXPECT_GT(engine.bucket_count(), initial);
  // Drain back to nearly empty: the table must shrink again (capped at
  // the minimum size), and every event must come out in order.
  Time last = 0;
  std::size_t drained = 0;
  while (const auto event = engine.pop()) {
    EXPECT_GE(event->time, last);
    last = event->time;
    ++drained;
  }
  EXPECT_EQ(drained, 4096u);
  EXPECT_EQ(engine.bucket_count(), initial);
}

TEST(EngineTest, FarFutureEventsSurviveRebuckets) {
  // A sparse horizon (events eons apart) exercises the overflow/rebuild
  // path: bucket widths are derived from the current span, so a far-future
  // event must neither be lost nor reordered.
  Engine engine;
  engine.schedule({5, EventKind::kJobSubmit, 0, 1});
  engine.schedule({1'000'000'000'000, EventKind::kJobEnd, 0, 2});
  engine.schedule({3, EventKind::kJobSubmit, 0, 3});
  EXPECT_EQ(engine.pop()->job, 3);
  engine.schedule({7'000'000'000'000, EventKind::kJobEnd, 0, 4});
  EXPECT_EQ(engine.pop()->job, 1);
  EXPECT_EQ(engine.pop()->job, 2);
  EXPECT_EQ(engine.now(), 1'000'000'000'000);
  EXPECT_EQ(engine.pop()->job, 4);
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, DenseTiesBeyondOneSegmentStayFifo) {
  // More same-(time, kind) events than one bucket segment holds (kSlot)
  // forces segment spills; FIFO order must survive them.
  Engine engine;
  for (JobId id = 0; id < 200; ++id) {
    engine.schedule({42, EventKind::kJobSubmit, 0, id});
  }
  for (JobId id = 0; id < 200; ++id) {
    const auto event = engine.pop();
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->job, id);
  }
  EXPECT_TRUE(engine.empty());
}

TEST(EngineTest, DeterministicUnderHeavyTies) {
  // Two engines fed identically must drain identically.
  Engine a;
  Engine b;
  for (int i = 0; i < 1000; ++i) {
    const Event event{i % 7, i % 2 == 0 ? EventKind::kJobEnd
                                        : EventKind::kJobSubmit,
                      0, i};
    a.schedule(event);
    b.schedule(event);
  }
  while (!a.empty()) {
    const auto ea = a.pop();
    const auto eb = b.pop();
    ASSERT_TRUE(ea && eb);
    EXPECT_EQ(ea->job, eb->job);
    EXPECT_EQ(ea->time, eb->time);
  }
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace bsld::sim
