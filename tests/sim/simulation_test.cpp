#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include "sim/arena.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::sim {
namespace {

using testing::Models;
using testing::job;
using testing::workload;

class SimulationTest : public ::testing::Test {
 protected:
  Models models_;
};

TEST_F(SimulationTest, SingleJobRunsImmediately) {
  const auto result =
      testing::run(workload(4, {job(1, 0, 100, 200, 2)}), models_);
  ASSERT_EQ(result.jobs.size(), 1u);
  const JobOutcome& outcome = result.jobs[0];
  EXPECT_EQ(outcome.start, 0);
  EXPECT_EQ(outcome.end, 100);  // no DVFS: runtime unchanged
  EXPECT_EQ(outcome.gear, models_.gears.top_index());
  EXPECT_DOUBLE_EQ(outcome.bsld, 1.0);
  EXPECT_EQ(result.reduced_jobs, 0);
  EXPECT_EQ(result.makespan, 100);
}

TEST_F(SimulationTest, HandComputedEasySchedule) {
  // 4 CPUs. Job 1 takes the machine to t=1000 (requested 1200). Job 2 (4
  // cpus) reserves at 1200. Job 3 (1 cpu, 100 s <= shadow) backfills at
  // its submit time. Job 1 ends early at 1000 -> rescheduling starts job 2
  // then, not at 1200.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1200, 4), job(2, 10, 500, 600, 4),
                   job(3, 20, 100, 150, 1)}),
      models_);
  // Job 3 cannot run before job 1 ends (all CPUs busy): EASY backfilling
  // backfills only onto idle CPUs.
  EXPECT_EQ(result.jobs[0].start, 0);
  EXPECT_EQ(result.jobs[1].start, 1000);  // early completion rescheduling
  EXPECT_EQ(result.jobs[2].start, 1500);  // after job 2 (FCFS preserved)
  EXPECT_EQ(result.jobs[1].wait(), 990);
}

TEST_F(SimulationTest, BackfillUsesIdleCpus) {
  // Job 1 holds 3/4 CPUs until 1000; job 2 wants all 4 -> reservation at
  // 1000 (requested end of job 1 is 1200 but actual end 1000 triggers
  // rescheduling; reservation is computed from requested: 1200).
  // Job 3 (1 cpu, short) backfills immediately on the free CPU.
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1200, 3), job(2, 10, 500, 600, 4),
                   job(3, 20, 100, 150, 1)}),
      models_);
  EXPECT_EQ(result.jobs[2].start, 20);   // backfilled at submit
  EXPECT_EQ(result.jobs[1].start, 1000); // head starts when job 1 really ends
}

TEST_F(SimulationTest, MetricsAggregation) {
  const auto result = testing::run(
      workload(2, {job(1, 0, 700, 700, 2), job(2, 0, 700, 700, 2)}), models_);
  // Job 2 waits 700 s; BSLD_2 = (700 + 700) / 700 = 2.
  EXPECT_DOUBLE_EQ(result.jobs[0].bsld, 1.0);
  EXPECT_DOUBLE_EQ(result.jobs[1].bsld, 2.0);
  EXPECT_DOUBLE_EQ(result.avg_bsld, 1.5);
  EXPECT_DOUBLE_EQ(result.avg_wait, 350.0);
  EXPECT_EQ(result.makespan, 1400);
  // Machine fully busy for the whole horizon.
  EXPECT_NEAR(result.utilization, 1.0, 1e-12);
}

TEST_F(SimulationTest, EnergyMatchesMeterByHand) {
  const auto result =
      testing::run(workload(2, {job(1, 0, 100, 100, 1)}), models_);
  const double active = models_.power.active_power(models_.gears.top_index());
  const double idle = models_.power.idle_power();
  EXPECT_NEAR(result.energy.computational_joules, 100.0 * active, 1e-6);
  // Horizon 100 s, 2 CPUs: 100 idle core-seconds.
  EXPECT_NEAR(result.energy.idle_joules, 100.0 * idle, 1e-6);
}

TEST_F(SimulationTest, BsldFloorConfigurable) {
  sim::SimulationConfig config;
  config.bsld_floor = 100;
  const auto result =
      testing::run(workload(1, {job(1, 0, 50, 60, 1), job(2, 0, 50, 60, 1)}),
                   models_, core::BasePolicy::kEasy, std::nullopt, "FirstFit",
                   config);
  // Job 2 waits 50 s: BSLD = (50 + 50)/max(100, 50) = 1.
  EXPECT_DOUBLE_EQ(result.jobs[1].bsld, 1.0);
}

TEST_F(SimulationTest, DvfsDilatesRuntimeAndCountsReduced) {
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  const auto result = testing::run(
      workload(4, {job(1, 0, 1000, 1200, 2)}), models_,
      core::BasePolicy::kEasy, dvfs);
  // Lone long job, zero wait: predicted BSLD at the lowest gear is
  // coef(0) = 1.9375 <= 2 -> runs at 0.8 GHz. (In binary floating point
  // 1000 * coef lands just below 1937.5, so rounding gives 1937.)
  EXPECT_EQ(result.jobs[0].gear, 0);
  EXPECT_EQ(result.jobs[0].scaled_runtime, 1937);
  EXPECT_EQ(result.jobs[0].end, 1937);
  EXPECT_EQ(result.reduced_jobs, 1);
  EXPECT_EQ(result.jobs_per_gear[0], 1);
}

TEST_F(SimulationTest, EnlargedMachineViaConfig) {
  sim::SimulationConfig config;
  config.cpus = 8;
  const auto result =
      testing::run(workload(4, {job(1, 0, 100, 100, 4), job(2, 0, 100, 100, 4)}),
                   models_, core::BasePolicy::kEasy, std::nullopt, "FirstFit",
                   config);
  EXPECT_EQ(result.cpus, 8);
  // Both fit simultaneously on the enlarged machine.
  EXPECT_EQ(result.jobs[1].start, 0);
}

TEST_F(SimulationTest, InvalidWorkloadsRejected) {
  Models models;
  EXPECT_THROW(testing::run(workload(4, {}), models), Error);
  EXPECT_THROW(testing::run(workload(4, {job(1, 0, 10, 20, 5)}), models),
               Error);  // larger than machine
  EXPECT_THROW(
      testing::run(workload(4, {job(1, 0, 10, 20, 2), job(1, 5, 10, 20, 1)}),
                   models),
      Error);  // duplicate id
  EXPECT_THROW(testing::run(workload(4, {job(1, 0, 10, 0, 2)}), models),
               Error);  // requested < 1
}

TEST_F(SimulationTest, RunIsSingleShot) {
  const wl::Workload load = workload(2, {job(1, 0, 10, 20, 1)});
  const auto policy =
      core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
  Simulation simulation(load, *policy, models_.power, models_.time);
  (void)simulation.run();
  EXPECT_THROW((void)simulation.run(), Error);
}

TEST_F(SimulationTest, MismatchedGearSetsRejected) {
  const wl::Workload load = workload(2, {job(1, 0, 10, 20, 1)});
  const auto policy =
      core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
  const cluster::GearSet other({{1.0, 1.0}, {2.0, 1.2}});
  const power::BetaTimeModel other_time(other, 0.5);
  EXPECT_THROW(Simulation(load, *policy, models_.power, other_time), Error);
}

TEST_F(SimulationTest, EventCountIsTwoPerJob) {
  const auto result = testing::run(
      workload(4, {job(1, 0, 10, 20, 1), job(2, 3, 10, 20, 1)}), models_);
  EXPECT_EQ(result.events_processed, 4u);
}

TEST_F(SimulationTest, ArenaRecyclesEngineStorageAcrossRuns) {
  const wl::Workload load =
      workload(4, {job(1, 0, 100, 200, 2), job(2, 10, 50, 60, 1)});
  // First run primes the thread-local arena; each later Simulation must
  // hand its engine slabs back so the next one starts warm instead of
  // re-allocating, and results must be identical run over run.
  const auto first = testing::run(load, models_);
  ASSERT_TRUE(RunArena::local().engine_warm());
  const std::uint64_t recycles = RunArena::local().engine_recycles();
  const auto second = testing::run(load, models_);
  const auto third = testing::run(load, models_);
  EXPECT_EQ(RunArena::local().engine_recycles(), recycles + 2);
  ASSERT_EQ(second.jobs.size(), first.jobs.size());
  for (std::size_t i = 0; i < first.jobs.size(); ++i) {
    EXPECT_EQ(second.jobs[i].start, first.jobs[i].start);
    EXPECT_EQ(second.jobs[i].end, first.jobs[i].end);
    EXPECT_EQ(third.jobs[i].gear, first.jobs[i].gear);
  }
  EXPECT_DOUBLE_EQ(third.avg_bsld, first.avg_bsld);
}

TEST_F(SimulationTest, StreamingRunMatchesMaterializedAtEveryLookahead) {
  // A sorted trace driven through the bounded-lookahead streaming ctor
  // must pop the exact event sequence of the materialized run, down to a
  // window of a single outstanding submit.
  const wl::Workload load = workload(
      4, {job(1, 0, 1000, 1200, 4), job(2, 10, 500, 600, 4),
          job(3, 20, 100, 150, 1), job(4, 1200, 50, 80, 2)});
  const auto materialized = testing::run(load, models_);

  for (const std::int64_t lookahead : {1, 2, 3, 100}) {
    const auto policy =
        core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
    wl::WorkloadViewStream stream(load);
    SimulationConfig config;
    config.submit_lookahead = lookahead;
    const auto streamed = run_simulation(stream, *policy, models_.power,
                                         models_.time, config);
    EXPECT_EQ(streamed.events_processed, materialized.events_processed);
    EXPECT_EQ(streamed.avg_bsld, materialized.avg_bsld) << lookahead;
    EXPECT_EQ(streamed.makespan, materialized.makespan);
    ASSERT_EQ(streamed.jobs.size(), materialized.jobs.size());
    for (std::size_t i = 0; i < materialized.jobs.size(); ++i) {
      EXPECT_EQ(streamed.jobs[i].start, materialized.jobs[i].start);
      EXPECT_EQ(streamed.jobs[i].end, materialized.jobs[i].end);
      EXPECT_EQ(streamed.jobs[i].gear, materialized.jobs[i].gear);
    }
  }
}

TEST_F(SimulationTest, StreamingRunReportsWindowBoundedPeak) {
  // 300 one-at-a-time jobs: the materialized path admits the whole trace
  // up front (peak == job count); the streaming window holds at most the
  // lookahead plus the finished jobs awaiting the next batched-delivery
  // flush (eviction runs after each 128-record flush), far below 300.
  std::vector<wl::Job> jobs;
  for (int i = 0; i < 300; ++i) {
    jobs.push_back(job(i + 1, i * 100, 50, 60, 4));
  }
  const wl::Workload load = workload(4, std::move(jobs));
  const auto materialized = testing::run(load, models_);
  EXPECT_EQ(materialized.peak_live_jobs, 300);

  const auto policy =
      core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
  wl::WorkloadViewStream stream(load);
  SimulationConfig config;
  config.submit_lookahead = 2;
  const auto streamed =
      run_simulation(stream, *policy, models_.power, models_.time, config);
  EXPECT_EQ(streamed.avg_bsld, materialized.avg_bsld);
  EXPECT_GT(streamed.peak_live_jobs, 0);
  EXPECT_LE(streamed.peak_live_jobs, 64);  // flush-cadence bound, not 300.
}

TEST_F(SimulationTest, StreamingRejectsUnsortedStreams) {
  // The bounded window cannot rewind time: an out-of-order submit in a
  // stream must be rejected, not silently mis-simulated.
  const wl::Workload unsorted =
      workload(4, {job(2, 100, 10, 20, 1), job(1, 0, 10, 20, 1)});
  const auto policy =
      core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
  wl::WorkloadViewStream stream(unsorted);
  SimulationConfig config;
  config.submit_lookahead = 1;
  EXPECT_THROW((void)run_simulation(stream, *policy, models_.power,
                                    models_.time, config),
               Error);
}

}  // namespace
}  // namespace bsld::sim
