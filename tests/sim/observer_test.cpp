/// \file observer_test.cpp
/// \brief The SimObserver seam: hook firing order, payload contents, and
/// the retain_jobs streaming mode, on hand-built workloads.
#include "sim/observer.hpp"

#include <gtest/gtest.h>

#include "sim/instruments.hpp"
#include "sim/simulation.hpp"
#include "testing/helpers.hpp"
#include "util/error.hpp"

namespace bsld::sim {
namespace {

using testing::Models;
using testing::job;
using testing::workload;

/// Appends one tag per hook invocation, with payload snapshots.
class RecordingObserver final : public SimObserver {
 public:
  struct GearChange {
    JobId id;
    GearIndex from;
    GearIndex to;
    Time time;
    Time segment_seconds;
  };

  void on_run_begin(const RunBeginEvent& event) override {
    ++run_begins;
    cpus = event.cpus;
    gear_count = event.gear_count;
  }
  void on_submit(const SubmitEvent& event) override {
    sequence.push_back({'q', event.job.id, event.time});
  }
  void on_start(const StartEvent& event) override {
    sequence.push_back({'s', event.job.id, event.time});
  }
  void on_gear_change(const GearChangeEvent& event) override {
    gear_changes.push_back({event.id, event.from, event.to, event.time,
                            event.segment_seconds});
  }
  void on_finish(const FinishEvent& event) override {
    sequence.push_back({'f', event.outcome.id, event.outcome.end});
    outcomes.push_back(event.outcome);
    final_segments.push_back(event.final_segment_seconds);
  }
  void on_run_end(const RunEndEvent& event) override {
    ++run_ends;
    makespan = event.makespan;
    horizon = event.horizon;
  }

  struct Step {
    char kind;
    JobId id;
    Time time;
    friend bool operator==(const Step&, const Step&) = default;
  };
  std::vector<Step> sequence;
  std::vector<GearChange> gear_changes;
  std::vector<JobOutcome> outcomes;
  std::vector<Time> final_segments;
  int run_begins = 0;
  int run_ends = 0;
  std::int32_t cpus = 0;
  std::size_t gear_count = 0;
  Time makespan = 0;
  Time horizon = 0;
};

class ObserverTest : public ::testing::Test {
 protected:
  Models models_;
};

TEST_F(ObserverTest, HooksFireInEventOrderWithFullPayloads) {
  // Two sequential jobs on a 2-cpu machine: submit/submit, start 1,
  // finish 1, start 2, finish 2.
  const wl::Workload load =
      workload(2, {job(1, 0, 100, 120, 2), job(2, 10, 50, 60, 2)});
  const auto policy =
      core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
  Simulation simulation(load, *policy, models_.power, models_.time);
  RecordingObserver observer;
  simulation.add_observer(observer);
  const SimulationResult result = simulation.run();

  EXPECT_EQ(observer.run_begins, 1);
  EXPECT_EQ(observer.run_ends, 1);
  EXPECT_EQ(observer.cpus, 2);
  EXPECT_EQ(observer.gear_count, models_.gears.size());
  EXPECT_EQ(observer.makespan, result.makespan);

  const std::vector<RecordingObserver::Step> expected{
      {'q', 1, 0},  {'s', 1, 0},  {'q', 2, 10},
      {'f', 1, 100}, {'s', 2, 100}, {'f', 2, 150}};
  EXPECT_EQ(observer.sequence, expected);

  // The streamed outcome equals the retained one, field for field.
  ASSERT_EQ(observer.outcomes.size(), 2u);
  EXPECT_EQ(observer.outcomes[0].id, result.jobs[0].id);
  EXPECT_EQ(observer.outcomes[0].end, result.jobs[0].end);
  EXPECT_EQ(observer.outcomes[1].wait(), result.jobs[1].wait());
  EXPECT_EQ(observer.outcomes[1].bsld, result.jobs[1].bsld);
  // No boosts: the final segment spans the whole execution.
  EXPECT_EQ(observer.final_segments[0], 100);
  EXPECT_EQ(observer.final_segments[1], 50);
}

TEST_F(ObserverTest, BoostSegmentsReportedThroughOnGearChange) {
  // DVFS(2, NO) starts the lone long job reduced; with raise limit 0, the
  // arrival of a second (waiting) job boosts it straight to Ftop.
  core::DvfsConfig dvfs;
  dvfs.bsld_threshold = 2.0;
  dvfs.wq_threshold = std::nullopt;
  core::DynamicRaiseConfig raise;
  raise.queue_limit = 0;
  const auto policy = core::make_dynamic_raise_policy(dvfs, raise, "FirstFit");

  const wl::Workload load =
      workload(4, {job(1, 0, 1000, 1200, 4), job(2, 500, 100, 150, 4)});
  Simulation simulation(load, *policy, models_.power, models_.time);
  RecordingObserver observer;
  simulation.add_observer(observer);
  const SimulationResult result = simulation.run();

  ASSERT_EQ(result.boosted_jobs, 1);
  ASSERT_EQ(observer.gear_changes.size(), 1u);
  const auto& change = observer.gear_changes[0];
  EXPECT_EQ(change.id, 1);
  EXPECT_EQ(change.from, 0);
  EXPECT_EQ(change.to, models_.gears.top_index());
  EXPECT_EQ(change.time, 500);
  EXPECT_EQ(change.segment_seconds, 500);

  // Gear segments partition the execution: the mid-flight segment plus the
  // final one cover start..end exactly, and the outcome agrees.
  ASSERT_EQ(observer.outcomes.size(), 2u);
  const JobOutcome& boosted = observer.outcomes[0].id == 1
                                  ? observer.outcomes[0]
                                  : observer.outcomes[1];
  const Time final_segment = observer.outcomes[0].id == 1
                                 ? observer.final_segments[0]
                                 : observer.final_segments[1];
  EXPECT_TRUE(boosted.boosted);
  EXPECT_EQ(boosted.gear, 0);
  EXPECT_EQ(boosted.final_gear, models_.gears.top_index());
  EXPECT_EQ(change.segment_seconds + final_segment,
            boosted.end - boosted.start);
}

TEST_F(ObserverTest, StreamingModeDropsJobsButKeepsAggregates) {
  const wl::Workload load =
      workload(2, {job(1, 0, 700, 700, 2), job(2, 0, 700, 700, 2)});
  const auto retained = testing::run(load, models_);

  SimulationConfig config;
  config.retain_jobs = false;
  const auto streaming = testing::run(load, models_, core::BasePolicy::kEasy,
                                      std::nullopt, "FirstFit", config);

  EXPECT_TRUE(streaming.jobs.empty());
  EXPECT_EQ(streaming.job_count, 2);
  EXPECT_EQ(retained.job_count, 2);
  EXPECT_EQ(streaming.avg_bsld, retained.avg_bsld);
  EXPECT_EQ(streaming.avg_wait, retained.avg_wait);
  EXPECT_EQ(streaming.makespan, retained.makespan);
  EXPECT_EQ(streaming.utilization, retained.utilization);
  EXPECT_EQ(streaming.energy.total_joules, retained.energy.total_joules);
  EXPECT_EQ(streaming.jobs_per_gear, retained.jobs_per_gear);
}

TEST_F(ObserverTest, AddObserverAfterRunThrows) {
  const wl::Workload load = workload(2, {job(1, 0, 10, 20, 1)});
  const auto policy =
      core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
  Simulation simulation(load, *policy, models_.power, models_.time);
  (void)simulation.run();
  RecordingObserver observer;
  EXPECT_THROW(simulation.add_observer(observer), Error);
}

TEST_F(ObserverTest, ObserversSeeIdenticalStreamsAcrossIdenticalRuns) {
  // Determinism at the observation layer: two separate simulations of the
  // same inputs deliver byte-for-byte identical event sequences.
  const wl::Workload load = workload(
      4, {job(1, 0, 1000, 1200, 3), job(2, 10, 500, 600, 4),
          job(3, 20, 100, 150, 1)});
  RecordingObserver first;
  RecordingObserver second;
  for (RecordingObserver* observer : {&first, &second}) {
    const auto policy =
        core::make_policy(core::BasePolicy::kEasy, std::nullopt, "FirstFit");
    Simulation simulation(load, *policy, models_.power, models_.time);
    simulation.add_observer(*observer);
    (void)simulation.run();
  }
  EXPECT_EQ(first.sequence, second.sequence);
  EXPECT_EQ(first.makespan, second.makespan);
}

}  // namespace
}  // namespace bsld::sim
