// Fixture: the tsa-escape rule. Disabling the clang thread-safety
// analysis needs a written reason; a lint marker does not count as one.
#define BSLD_NO_THREAD_SAFETY_ANALYSIS

void unjustified() BSLD_NO_THREAD_SAFETY_ANALYSIS {}  // lint-expect: tsa-escape

// Reads counters after every worker joined; no lock can be or needs to
// be held here, so the analysis is switched off for this one function.
void justified_by_preceding_comment() BSLD_NO_THREAD_SAFETY_ANALYSIS {}

void justified_inline() BSLD_NO_THREAD_SAFETY_ANALYSIS {}  // ctor-only path
