// Fixture: the new-delete rule.
struct Widget {
  int x = 0;
};

Widget* leak() {
  return new Widget;  // lint-expect: new-delete
}

void destroy(Widget* w) {
  delete w;  // lint-expect: new-delete
}

void destroy_array(Widget* w) {
  delete[] w;  // lint-expect: new-delete
}

// Deleted special members and std::default_delete are not naked deletes:
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};

// Identifiers containing the keywords are fine:
int new_value(int delete_count) { return delete_count; }

Widget* suppressed_singleton() {
  // bsld-lint: allow(new-delete): fixture demonstrating a valid suppression
  static Widget* w = new Widget;
  return w;
}
