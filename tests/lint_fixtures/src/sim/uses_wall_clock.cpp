// Fixture: the determinism rule (path-scoped to src/sim and src/core).
#include <chrono>
#include <cstdlib>

int jitter() {
  return rand();  // lint-expect: determinism
}

void reseed() {
  srand(42);  // lint-expect: determinism
}

long stamp() {
  return std::chrono::system_clock::now()  // lint-expect: determinism
      .time_since_epoch()
      .count();
}

unsigned hardware_entropy() {
  std::random_device rd;  // lint-expect: determinism
  return rd();
}

// Identifiers merely containing the banned names are fine:
double wait_time(double t) { return t; }
long sim_clock_ticks(long t) { return t; }

int suppressed_entropy() {
  // bsld-lint: allow(determinism): fixture demonstrating a valid suppression
  return rand();
}
