// Fixture: the eager-ingest rule (path-scoped to src/sim — the core pulls
// jobs through wl::JobStream; materializing a trace there is O(jobs) memory).
#include "workload/source.hpp"

namespace bsld::sim {

void ingest_everything(const wl::WorkloadSource& source) {
  auto workload = wl::load_source(source);  // lint-expect: eager-ingest
  (void)workload;
}

void ingest_unqualified(const wl::WorkloadSource& source) {
  using wl::load_source;
  auto workload = load_source(source);  // lint-expect: eager-ingest
  (void)workload;
}

// Identifiers merely containing the name are fine:
void reload_sources();
int preload_source_count();

void suppressed_ingest(const wl::WorkloadSource& source) {
  // bsld-lint: allow(eager-ingest): fixture demonstrating a valid suppression
  auto workload = wl::load_source(source);
  (void)workload;
}

}  // namespace bsld::sim
