// Fixture: the catch-all rule. A catch (...) must rethrow, capture
// std::current_exception() for a deferred rethrow, or end the process.
#include <exception>

#include <unistd.h>

void work();

void swallows() {
  try {
    work();
  } catch (...) {  // lint-expect: catch-all
  }
}

void rethrows() {
  try {
    work();
  } catch (...) {
    throw;
  }
}

std::exception_ptr captures() {
  try {
    work();
  } catch (...) {
    return std::current_exception();
  }
  return nullptr;
}

void dies_loudly() {
  try {
    work();
  } catch (...) {
    ::_exit(2);
  }
}
