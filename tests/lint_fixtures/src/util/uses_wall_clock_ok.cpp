// Fixture: the determinism rule does NOT apply outside src/sim and
// src/core — wall-clock reads in util (logging timestamps) are fine.
#include <chrono>

long log_stamp() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
