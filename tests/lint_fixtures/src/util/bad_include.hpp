// Fixture sibling header: bad_include.cpp must include this first.
#pragma once

void helper();
