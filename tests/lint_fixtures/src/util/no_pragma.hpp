// lint-expect: pragma-once
// Fixture: a header without #pragma once (findings anchor to line 1).
inline int forty_two() { return 42; }
