// Fixture: the include-hygiene rule — own header must come first, and
// "../" relative includes are banned everywhere.
#include <string>         // lint-expect: include-hygiene
#include "../escape.hpp"  // lint-expect: include-hygiene
#include "util/bad_include.hpp"

void helper() {}
