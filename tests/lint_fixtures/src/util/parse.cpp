// Fixture: src/util/parse.cpp is the one sanctioned home of the raw
// conversion primitives — nothing in this file may be reported.
#include <cstdlib>

double implementation_detail(const char* s) {
  return strtod(s, nullptr);
}
