// Fixture: the iostream rule — library code under src/ must not include
// <iostream>; entry points that own stdout/stderr suppress with a reason.
#include <iostream>  // lint-expect: iostream
// bsld-lint: allow(iostream): fixture — proves the suppression silences the rule
#include <iostream>

void report_uses_iostream() { std::cout.flush(); }
