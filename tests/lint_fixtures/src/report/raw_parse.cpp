// Fixture: the raw-parse rule and its suppression syntax.
#include <cstdlib>
#include <string>

double bad_stod(const std::string& s) {
  return std::stod(s);  // lint-expect: raw-parse
}

int bad_stoi(const std::string& s) {
  return std::stoi(s);  // lint-expect: raw-parse
}

double bad_c_atof(const char* s) {
  return atof(s);  // lint-expect: raw-parse
}

long bad_strtol(const char* s) {
  return std::strtol(s, nullptr, 10);  // lint-expect: raw-parse
}

// A mention of std::stod in a comment, or "std::stod(x)" in a string
// literal, is not a call:
const char* kDoc = "never write std::stod(text) here";

double suppressed(const std::string& s) {
  return std::stod(s);  // bsld-lint: allow(raw-parse): fixture demonstrating a valid suppression
}

double malformed_suppression(const std::string& s) {
  return std::stod(s);  // bsld-lint: allow(raw-parse) — no reason // lint-expect: raw-parse, bad-suppression
}

double unknown_rule(const std::string& s) {
  return std::stod(s);  // bsld-lint: allow(no-such-rule): whatever // lint-expect: raw-parse, bad-suppression
}
