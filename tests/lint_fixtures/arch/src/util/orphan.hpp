#pragma once  // arch-expect: orphan-header
// Fixture: nobody includes this header — the orphan-header rule must
// report it (anchored at line 1, where a suppression would also live).

namespace fix::util {
inline int nobody_calls_me() { return -1; }
}  // namespace fix::util
