// Fixture: clean foundation header — included by several modules, no
// findings expected anywhere in this file.
#pragma once

namespace fix::util {
inline int base_value() { return 42; }
}  // namespace fix::util
