// Fixture: two layer crimes. The include below points *up* the DAG
// (cluster may only depend on util), and this header itself is cluster
// internals that report/skips.hpp reaches around the declared interface.
#pragma once

#include "sim/api.hpp"  // arch-expect: layer-violation

namespace fix::cluster {
inline int internals() { return 7; }
}  // namespace fix::cluster
