// Fixture: cluster's declared interface header (see layers.conf) — the
// one header layer-skipping consumers may include. No findings here.
#pragma once

#include "util/base.hpp"

namespace fix::cluster {
inline int via_interface() { return fix::util::base_value(); }
}  // namespace fix::cluster
