// Fixture: the legitimate consumer that keeps the non-orphan headers
// alive. Includes here are all allowed: report may depend on util,
// cluster (via its interface) and sim (adjacent layer, no interface).
#include "cluster/iface.hpp"
#include "report/api.hpp"
#include "report/skips.hpp"
#include "sim/api.hpp"
#include "util/base.hpp"

namespace fix::report {
int use_everything() {
  return fix::cluster::via_interface() + fix::sim::tick() + skips();
}
}  // namespace fix::report
