// Fixture: report sits three layers above cluster, which declares an
// interface (cluster/iface.hpp). Reaching for cluster internals instead
// must be reported as a skip-interface violation.
#pragma once

#include "cluster/node.hpp"  // arch-expect: skip-interface

namespace fix::report {
inline int skips() { return fix::cluster::internals(); }
}  // namespace fix::report
