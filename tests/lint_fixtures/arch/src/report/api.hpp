// Fixture: the API-contract audit — missing [[nodiscard]] on a
// status-returning public function, a bogus noexcept claim, a malformed
// suppression marker, and one correctly suppressed finding that must
// stay quiet.
#pragma once

#include "util/base.hpp"

namespace fix::report {

class Store {
 public:
  bool try_open();  // arch-expect: missing-nodiscard

  // Correct suppression of the same rule: no finding on the next line.
  // bsld-lint: allow(missing-nodiscard): fixture — proves the shared suppression syntax silences the audit
  bool quiet_ok();

  // The claim is a lie: the body throws, so the first failure becomes
  // std::terminate instead of a catchable bsld-style error.
  int must_not_fail(int value) noexcept {  // arch-expect: noexcept-throws
    if (value < 0) throw value;
    return value + fix::util::base_value();
  }

 private:
  // Private members are not public API surface: no audit finding even
  // though the return type is status-like.
  bool internal_flag();
};

// Malformed marker: unknown rule name, so it suppresses nothing and is
// itself reported.
// bsld-lint: allow(not-a-rule): no such rule  // arch-expect: bad-suppression

}  // namespace fix::report
