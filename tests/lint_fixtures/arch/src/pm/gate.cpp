// Fixture: a pm source reaching *up* the stack. report is two layers
// above pm and is not among pm's declared dependencies, so the include
// must be reported as a layer violation regardless of direction or
// interface lists.
#include "report/api.hpp"  // arch-expect: layer-violation

namespace fix::pm {
int gate() { return fix::report::Store{}.must_not_fail(1); }
}  // namespace fix::pm
