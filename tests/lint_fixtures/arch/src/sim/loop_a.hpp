// Fixture: half of a two-header include cycle. The include-cycle finding
// is anchored at the lexicographically-first member's in-cycle include.
#pragma once

#include "sim/loop_b.hpp"  // arch-expect: include-cycle

namespace fix::sim {
inline int loop_a() { return 1; }
}  // namespace fix::sim
