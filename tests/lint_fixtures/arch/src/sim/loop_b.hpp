// Fixture: the other half of the include cycle (reported once, anchored
// in loop_a.hpp — see there).
#pragma once

#include "sim/loop_a.hpp"

namespace fix::sim {
inline int loop_b() { return 2; }
}  // namespace fix::sim
