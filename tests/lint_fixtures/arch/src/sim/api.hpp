// Fixture: clean sim header — sim declares no interface list, so its
// adjacent-layer consumer (report) may include it directly.
#pragma once

#include "util/base.hpp"

namespace fix::sim {
inline int tick() { return fix::util::base_value() + 1; }
}  // namespace fix::sim
